//! Best-response dynamics for the ZEC game: how close can *any*
//! deterministic strategy get to the Lemma 6.2 bound?
//!
//! A deterministic strategy is a pair of tables (one coloring per
//! possible input, 21 inputs per player). Because the referee draws
//! the two inputs independently and uniformly, each player's inputs
//! contribute independently to the win probability — so the *exact*
//! best response to a fixed opponent decomposes per input and is
//! computable by brute force over the 6 ordered pairs of distinct
//! colors. Alternating best responses yields a sequence of strategies
//! with monotonically non-decreasing win probability that converges to
//! a local equilibrium; Lemma 6.2 caps every point of the sequence at
//! `11024/11025`, and the dynamics let us measure how far below the
//! cap the reachable optima actually sit.

use crate::zec::{is_win, GameColor, PairInput, ZecStrategy, INPUTS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully tabled deterministic ZEC strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabledStrategy {
    /// Alice's colors per input index (lexicographic input order).
    pub alice: [[GameColor; 2]; INPUTS],
    /// Bob's colors per input index.
    pub bob: [[GameColor; 2]; INPUTS],
}

/// Index of an input in [`PairInput::all`]'s lexicographic order.
pub fn input_index(input: PairInput) -> usize {
    // Position of pair (i, j), i < j < 7, in lexicographic enumeration.
    let i = input.i as usize;
    let j = input.j as usize;
    // Pairs starting below i: sum_{t<i} (6 - t).
    let before: usize = (0..i).map(|t| 6 - t).sum();
    before + (j - i - 1)
}

impl TabledStrategy {
    /// Tabulates an arbitrary deterministic strategy.
    pub fn from_strategy(s: &dyn ZecStrategy) -> Self {
        assert!(
            s.is_deterministic(),
            "only deterministic strategies are tables"
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut alice = [[0; 2]; INPUTS];
        let mut bob = [[0; 2]; INPUTS];
        for input in PairInput::all() {
            alice[input_index(input)] = s.alice(input, &mut rng);
            bob[input_index(input)] = s.bob(input, &mut rng);
        }
        TabledStrategy { alice, bob }
    }

    /// A uniformly random valid (hub-proper) table.
    pub fn random(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = || {
            let c0 = rng.gen_range(0..3u8);
            let c1 = (c0 + rng.gen_range(1..3u8)) % 3;
            [c0, c1]
        };
        let mut alice = [[0; 2]; INPUTS];
        let mut bob = [[0; 2]; INPUTS];
        for slot in alice.iter_mut().chain(bob.iter_mut()) {
            *slot = draw();
        }
        TabledStrategy { alice, bob }
    }

    /// Exact win probability over all `21 × 21` joint inputs.
    pub fn win_probability(&self) -> f64 {
        let all = PairInput::all();
        let mut wins = 0usize;
        for &a in &all {
            for &b in &all {
                if is_win(a, self.alice[input_index(a)], b, self.bob[input_index(b)]) {
                    wins += 1;
                }
            }
        }
        wins as f64 / (INPUTS * INPUTS) as f64
    }
}

impl ZecStrategy for TabledStrategy {
    fn alice(&self, input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        self.alice[input_index(input)]
    }
    fn bob(&self, input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        self.bob[input_index(input)]
    }
    fn name(&self) -> &'static str {
        "tabled"
    }
}

/// All 6 ordered pairs of distinct colors.
fn color_pairs() -> [[GameColor; 2]; 6] {
    [[0, 1], [0, 2], [1, 0], [1, 2], [2, 0], [2, 1]]
}

/// Replaces Bob's table with his exact best response to Alice's.
pub fn best_response_bob(s: &TabledStrategy) -> TabledStrategy {
    let all = PairInput::all();
    let mut out = s.clone();
    for &b_in in &all {
        let mut best = ([0; 2], usize::MAX, 0usize);
        for cand in color_pairs() {
            let wins = all
                .iter()
                .filter(|&&a_in| is_win(a_in, s.alice[input_index(a_in)], b_in, cand))
                .count();
            if best.1 == usize::MAX || wins > best.2 {
                best = (cand, 0, wins);
            }
        }
        out.bob[input_index(b_in)] = best.0;
    }
    out
}

/// Replaces Alice's table with her exact best response to Bob's.
pub fn best_response_alice(s: &TabledStrategy) -> TabledStrategy {
    let all = PairInput::all();
    let mut out = s.clone();
    for &a_in in &all {
        let mut best = ([0; 2], usize::MAX, 0usize);
        for cand in color_pairs() {
            let wins = all
                .iter()
                .filter(|&&b_in| is_win(a_in, cand, b_in, s.bob[input_index(b_in)]))
                .count();
            if best.1 == usize::MAX || wins > best.2 {
                best = (cand, 0, wins);
            }
        }
        out.alice[input_index(a_in)] = best.0;
    }
    out
}

/// Runs alternating best-response dynamics from `start`, returning the
/// final strategy and the win-probability trajectory (starting with
/// `start`'s own probability). The trajectory is non-decreasing.
pub fn best_response_dynamics(
    start: TabledStrategy,
    iterations: usize,
) -> (TabledStrategy, Vec<f64>) {
    let mut cur = start;
    let mut trajectory = vec![cur.win_probability()];
    for step in 0..iterations {
        cur = if step % 2 == 0 {
            best_response_bob(&cur)
        } else {
            best_response_alice(&cur)
        };
        trajectory.push(cur.win_probability());
    }
    (cur, trajectory)
}

/// The best deterministic strategy found by multi-start best-response
/// dynamics: returns `(strategy, win_probability)`.
pub fn optimized_strategy(starts: u64, iterations: usize) -> (TabledStrategy, f64) {
    let mut best: Option<(TabledStrategy, f64)> = None;
    for seed in 0..starts {
        let (s, traj) = best_response_dynamics(TabledStrategy::random(seed), iterations);
        let p = *traj.last().expect("nonempty");
        if best.as_ref().is_none_or(|(_, bp)| p > *bp) {
            best = Some((s, p));
        }
    }
    best.expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zec::{exact_win_probability, LabelingStrategy, ZEC_WIN_BOUND};

    #[test]
    fn input_index_is_a_bijection() {
        let all = PairInput::all();
        for (expect, &input) in all.iter().enumerate() {
            assert_eq!(input_index(input), expect);
        }
    }

    #[test]
    fn tabled_matches_original() {
        let s = LabelingStrategy::shifted();
        let t = TabledStrategy::from_strategy(&s);
        assert!((t.win_probability() - exact_win_probability(&s)).abs() < 1e-12);
    }

    #[test]
    fn best_response_never_decreases() {
        let t = TabledStrategy::random(3);
        let p0 = t.win_probability();
        let t1 = best_response_bob(&t);
        let p1 = t1.win_probability();
        assert!(p1 >= p0, "{p1} < {p0}");
        let t2 = best_response_alice(&t1);
        let p2 = t2.win_probability();
        assert!(p2 >= p1, "{p2} < {p1}");
    }

    #[test]
    fn dynamics_trajectory_monotone_and_bounded() {
        let (final_s, traj) = best_response_dynamics(TabledStrategy::random(7), 8);
        for w in traj.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "trajectory must be monotone: {traj:?}"
            );
        }
        let p = final_s.win_probability();
        assert!(
            p <= ZEC_WIN_BOUND,
            "even optimized strategies obey Lemma 6.2: {p} > {ZEC_WIN_BOUND}"
        );
        // And the dynamics genuinely improve over random play.
        assert!(p > traj[0], "optimization should help: {traj:?}");
    }

    #[test]
    fn optimized_strategy_is_strong_but_bounded() {
        let (_, p) = optimized_strategy(6, 8);
        assert!(p <= ZEC_WIN_BOUND);
        // Coordinated deterministic play beats naive labelings by a
        // wide margin — but cannot reach 1.
        assert!(
            p > 0.90,
            "best response should reach a strong local optimum: {p}"
        );
        assert!(p < 1.0, "no strategy wins always (Lemma 6.2)");
    }

    #[test]
    fn random_tables_are_hub_proper() {
        let t = TabledStrategy::random(9);
        for row in t.alice.iter().chain(t.bob.iter()) {
            assert_ne!(row[0], row[1]);
        }
    }
}
