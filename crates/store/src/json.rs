//! Hand-written JSON encoding/decoding.
//!
//! The offline build environment has a no-op `serde` stand-in (see
//! `crates/compat/serde`), so report serialization is implemented by
//! hand here: a small escaping [`Writer`] for output and a strict
//! recursive-descent [`Value`] parser for round-trips. [`CommStats`]
//! gets first-class encode/decode since it is the unit of exchange
//! between runs, dashboards, and stored experiment records.

use bichrome_comm::CommStats;
use std::collections::BTreeMap;

/// Incremental writer for one JSON object; construct with
/// [`Writer::object`].
#[derive(Debug)]
pub struct Writer {
    buf: String,
    any: bool,
}

impl Writer {
    /// Starts an object.
    pub fn object() -> Self {
        Writer {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(&escape(name));
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push_str(&escape(value));
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        self.buf.push_str(&value.to_string());
    }

    /// Adds a float field (rendered as `null` if not finite).
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Adds a `null` field.
    pub fn field_null(&mut self, name: &str) {
        self.key(name);
        self.buf.push_str("null");
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn field_raw(&mut self, name: &str, json: &str) {
        self.key(name);
        self.buf.push_str(json);
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escapes a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as f64; exact for integers below 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, key-ordered.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            chars: text.chars().peekable(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.peek().is_some() {
            return Err(format!("trailing garbage at char {}", p.pos));
        }
        Ok(v)
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as u64, if this is a nonnegative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Maximum nesting depth accepted by [`Value::parse`]; deeper input
/// is a syntax error rather than a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {c:?} at char {}, got {got:?}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        for c in lit.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.nested(Parser::object),
            Some('[') => self.nested(Parser::array),
            Some('"') => Ok(Value::String(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at char {}", self.pos)),
        }
    }

    fn nested(&mut self, parse: fn(&mut Self) -> Result<Value, String>) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at char {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = parse(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Object(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Array(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let unit = self.hex4()?;
                        // Standard encoders escape non-BMP characters
                        // as UTF-16 surrogate pairs; recombine them.
                        let code = if (0xD800..0xDC00).contains(&unit) {
                            if self.bump() != Some('\\') || self.bump() != Some('u') {
                                return Err("lone high surrogate in \\u escape".into());
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate in \\u escape".into());
                            }
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err("lone low surrogate in \\u escape".into());
                        } else {
                            unit
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            code = code * 16 + c.to_digit(16).ok_or(format!("bad hex digit {c:?}"))?;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            self.bump();
            text.push('-');
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || "+-.eE".contains(c) {
                self.bump();
                text.push(c);
            } else {
                break;
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Serializes a [`CommStats`] as a JSON object.
pub fn comm_stats_to_json(stats: &CommStats) -> String {
    let phases = |m: &BTreeMap<String, u64>| {
        let fields: Vec<String> = m
            .iter()
            .map(|(k, v)| format!("{}:{}", escape(k), v))
            .collect();
        format!("{{{}}}", fields.join(","))
    };
    let mut w = Writer::object();
    w.field_u64("bits_alice_to_bob", stats.bits_alice_to_bob);
    w.field_u64("bits_bob_to_alice", stats.bits_bob_to_alice);
    w.field_u64("rounds", stats.rounds);
    w.field_raw("bits_by_phase", &phases(&stats.bits_by_phase));
    w.field_raw("rounds_by_phase", &phases(&stats.rounds_by_phase));
    w.finish()
}

/// Deserializes a [`CommStats`] from the JSON produced by
/// [`comm_stats_to_json`].
///
/// # Errors
///
/// Returns a description of the first syntax or shape error.
pub fn comm_stats_from_json(text: &str) -> Result<CommStats, String> {
    let v = Value::parse(text)?;
    let obj = v.as_object().ok_or("CommStats JSON must be an object")?;
    let get_u64 = |key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Value::as_u64)
            .ok_or(format!("missing or non-integer field {key:?}"))
    };
    let get_phases = |key: &str| -> Result<BTreeMap<String, u64>, String> {
        let m = obj
            .get(key)
            .and_then(Value::as_object)
            .ok_or(format!("missing or non-object field {key:?}"))?;
        m.iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|x| (k.clone(), x))
                    .ok_or(format!("non-integer phase {k:?}"))
            })
            .collect()
    };
    Ok(CommStats {
        bits_alice_to_bob: get_u64("bits_alice_to_bob")?,
        bits_bob_to_alice: get_u64("bits_bob_to_alice")?,
        rounds: get_u64("rounds")?,
        bits_by_phase: get_phases("bits_by_phase")?,
        rounds_by_phase: get_phases("rounds_by_phase")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_stats_roundtrip_empty() {
        let s = CommStats::default();
        let json = comm_stats_to_json(&s);
        assert_eq!(comm_stats_from_json(&json).expect("parses"), s);
    }

    #[test]
    fn comm_stats_roundtrip_full() {
        let mut s = CommStats {
            bits_alice_to_bob: 1234,
            bits_bob_to_alice: 567,
            rounds: 42,
            ..CommStats::default()
        };
        s.bits_by_phase.insert("rct".into(), 1000);
        s.bits_by_phase.insert("d1lc \"quoted\"\n".into(), 801);
        s.rounds_by_phase.insert("rct".into(), 40);
        let json = comm_stats_to_json(&s);
        let back = comm_stats_from_json(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = Value::parse(r#"{"a": [1, 2.5, -3], "b": {"x": "q\"\nA"}, "c": null, "d": true}"#)
            .expect("parses");
        let obj = v.as_object().expect("object");
        assert_eq!(
            obj["a"],
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Number(-3.0)
            ])
        );
        assert_eq!(
            obj["b"].as_object().expect("object")["x"].as_str(),
            Some("q\"\nA")
        );
        assert_eq!(obj["c"], Value::Null);
        assert_eq!(obj["d"], Value::Bool(true));
    }

    #[test]
    fn parser_recombines_surrogate_pairs() {
        // Python's json.dumps escapes 😀 (U+1F600) as a surrogate pair.
        let v = Value::parse(r#"{"label": "\ud83d\ude00 run"}"#).expect("parses");
        assert_eq!(
            v.as_object().expect("object")["label"].as_str(),
            Some("\u{1F600} run")
        );
        assert!(Value::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Value::parse(r#""\ud83dA""#).is_err(), "bad low surrogate");
        assert!(Value::parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        // Deep nesting must error out, not overflow the stack.
        let deep = "[".repeat(200_000);
        assert!(Value::parse(&deep)
            .expect_err("too deep")
            .contains("nesting"));
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("{}x").is_err());
        assert!(Value::parse(r#"{"a" 1}"#).is_err());
        assert!(comm_stats_from_json("{}").is_err());
        assert!(comm_stats_from_json(r#"{"bits_alice_to_bob": "nope"}"#).is_err());
    }
}
