//! The v1 record format: one JSON object per line in `trials.jsonl`.
//!
//! New writes go to the v2 binary segments (see the [crate
//! docs](crate)); this module keeps the v1 line codec public so v1
//! stores keep opening forever, migration tools can read them, and
//! benchmarks can author legacy logs to compare load paths.

use crate::{json, line_hash, Entry, TrialKey};

/// Serializes one v1 log line (with trailing newline) for a record.
pub fn encode_line(key: &TrialKey, record_json: &str) -> String {
    let mut w = json::Writer::object();
    w.field_str("hash", &format!("{:016x}", line_hash(key, record_json)));
    w.field_str("protocol", &key.protocol);
    w.field_str("graph", &key.graph);
    w.field_str("partitioner", &key.partitioner);
    w.field_u64("seed", key.seed);
    w.field_raw("record", record_json);
    w.finish() + "\n"
}

/// Parses and integrity-checks one v1 log line.
///
/// The seed and the record payload are extracted from the *raw* line
/// text (not re-serialized from the parsed tree) so they round-trip
/// byte-exactly — in particular a trial seed above 2⁵³ must not go
/// through the parser's `f64` numbers. Searching the raw text for the
/// unescaped `"seed":` / `,"record":` markers is unambiguous: inside
/// any JSON *string* value the quotes would be `\"`-escaped, so the
/// first unescaped occurrence is the line's own field (the payload,
/// which may legitimately contain a `"seed"` key of its own, comes
/// last in [`encode_line`]'s field order).
pub fn decode_line(line: &str) -> Result<Entry, String> {
    let v = json::Value::parse(line)?;
    let obj = v.as_object().ok_or("log line is not a JSON object")?;
    let get_str = |field: &str| {
        obj.get(field)
            .and_then(json::Value::as_str)
            .ok_or(format!("missing or non-string field {field:?}"))
    };
    let seed_at = line.find("\"seed\":").ok_or("missing field \"seed\"")? + "\"seed\":".len();
    let after_seed = &line[seed_at..];
    let digits_end = after_seed
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(after_seed.len());
    let seed_digits = &after_seed[..digits_end];
    let seed: u64 = seed_digits
        .parse()
        .map_err(|_| format!("seed {seed_digits:?} is not a u64"))?;
    let key = TrialKey {
        protocol: get_str("protocol")?.to_string(),
        graph: get_str("graph")?.to_string(),
        partitioner: get_str("partitioner")?.to_string(),
        seed,
    };
    if !obj.contains_key("record") {
        return Err("missing field \"record\"".to_string());
    }
    let record_at = line
        .find(",\"record\":")
        .ok_or("missing field \"record\"")?
        + ",\"record\":".len();
    let record_json = &line[record_at..line.len() - 1];
    let hash = get_str("hash")?;
    let expected = format!("{:016x}", line_hash(&key, record_json));
    if hash != expected {
        return Err(format!(
            "integrity hash {hash} does not match key {key} + record (expected {expected})"
        ));
    }
    Ok(Entry {
        key,
        record_json: record_json.to_string(),
    })
}
