//! The v2 binary segment format: length-prefixed trial frames.
//!
//! A v2 segment is an 8-byte magic header followed by a sequence of
//! records, each a little-endian length-prefixed frame:
//!
//! ```text
//! u32  frame_len          bytes after this field
//! u64  hash               the same integrity chain as v1 lines
//!                         (key content hash folded over the payload)
//! u64  seed               the trial seed, exact (never via f64)
//! u16  protocol_len
//! u16  graph_len
//! u16  partitioner_len
//! [protocol][graph][partitioner][record_json]   UTF-8 bytes
//! ```
//!
//! The payload stays the producer's opaque single-line JSON — v2
//! changes the *framing*, not the record contents, so a record
//! round-trips bit-exactly between formats and the v1 integrity hash
//! keeps covering identity and payload alike. Compared to the v1
//! JSON lines, decoding is a bounds check and a hash instead of a
//! recursive-descent parse, which is what makes opening a
//! 10⁵–10⁶-record store fast (see `bench_serve`).
//!
//! Corruption handling mirrors v1: decoding keeps the longest
//! well-formed prefix of a segment (bad magic, an oversized or torn
//! frame, non-UTF-8 labels, or a hash mismatch all end the prefix)
//! and reports how many bytes were dropped.

use crate::{line_hash, Entry, TrialKey};

/// The 8-byte header every v2 segment file starts with.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"BCHSEG2\n";

/// Hard upper bound on a single frame (defense against interpreting
/// corrupt bytes as a multi-gigabyte length and over-allocating).
const MAX_FRAME: u32 = 1 << 28;

/// Fixed bytes of a frame after the length prefix: hash + seed +
/// three label lengths.
const FRAME_FIXED: usize = 8 + 8 + 2 + 2 + 2;

/// Encodes one record as a v2 frame (length prefix included).
///
/// # Errors
///
/// Returns a description if a key label exceeds the format's 64 KiB
/// per-label bound (the payload length is only bounded by
/// [`MAX_FRAME`]).
pub(crate) fn encode(key: &TrialKey, record_json: &str) -> Result<Vec<u8>, String> {
    let (p, g, a, r) = (
        key.protocol.as_bytes(),
        key.graph.as_bytes(),
        key.partitioner.as_bytes(),
        record_json.as_bytes(),
    );
    for (name, bytes) in [("protocol", p), ("graph", g), ("partitioner", a)] {
        if bytes.len() > u16::MAX as usize {
            return Err(format!(
                "{name} label is {} bytes; the v2 frame bound is {}",
                bytes.len(),
                u16::MAX
            ));
        }
    }
    let frame_len = FRAME_FIXED + p.len() + g.len() + a.len() + r.len();
    if frame_len > MAX_FRAME as usize {
        return Err(format!(
            "record frame is {frame_len} bytes; the v2 frame bound is {MAX_FRAME}"
        ));
    }
    let mut out = Vec::with_capacity(4 + frame_len);
    out.extend_from_slice(&(frame_len as u32).to_le_bytes());
    out.extend_from_slice(&line_hash(key, record_json).to_le_bytes());
    out.extend_from_slice(&key.seed.to_le_bytes());
    out.extend_from_slice(&(p.len() as u16).to_le_bytes());
    out.extend_from_slice(&(g.len() as u16).to_le_bytes());
    out.extend_from_slice(&(a.len() as u16).to_le_bytes());
    out.extend_from_slice(p);
    out.extend_from_slice(g);
    out.extend_from_slice(a);
    out.extend_from_slice(r);
    Ok(out)
}

/// What decoding one segment's bytes produced: the well-formed
/// prefix's entries, how many bytes that prefix spans, and the
/// failure that ended it (if any).
pub(crate) struct SegmentLoad {
    /// Decoded records, in append order.
    pub entries: Vec<Entry>,
    /// Bytes of the well-formed prefix (including the magic header).
    pub good_bytes: usize,
    /// The decode failure that ended the prefix, if the segment was
    /// not fully intact.
    pub error: Option<String>,
}

/// Decodes a whole v2 segment, keeping the longest well-formed
/// prefix. Never fails: corruption is reported via
/// [`SegmentLoad::error`] with everything before it preserved.
pub(crate) fn decode_all(bytes: &[u8]) -> SegmentLoad {
    let mut load = SegmentLoad {
        entries: Vec::new(),
        good_bytes: 0,
        error: None,
    };
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        load.error = Some("segment header is missing or not BCHSEG2".to_string());
        return load;
    }
    let mut at = SEGMENT_MAGIC.len();
    load.good_bytes = at;
    while at < bytes.len() {
        match decode_frame(&bytes[at..]) {
            Ok((entry, consumed)) => {
                load.entries.push(entry);
                at += consumed;
                load.good_bytes = at;
            }
            Err(e) => {
                load.error = Some(e);
                return load;
            }
        }
    }
    load
}

/// Decodes one frame from the front of `bytes`, returning the entry
/// and how many bytes it consumed.
fn decode_frame(bytes: &[u8]) -> Result<(Entry, usize), String> {
    let take = |at: usize, n: usize| -> Result<&[u8], String> {
        bytes
            .get(at..at + n)
            .ok_or_else(|| "frame is torn (truncated mid-record)".to_string())
    };
    let u16_at = |at: usize| -> Result<usize, String> {
        Ok(u16::from_le_bytes(take(at, 2)?.try_into().expect("2 bytes")) as usize)
    };
    let frame_len = u32::from_le_bytes(take(0, 4)?.try_into().expect("4 bytes"));
    if frame_len > MAX_FRAME {
        return Err(format!(
            "frame length {frame_len} exceeds the format bound {MAX_FRAME}"
        ));
    }
    let frame_len = frame_len as usize;
    if frame_len < FRAME_FIXED {
        return Err(format!(
            "frame length {frame_len} is shorter than the fixed header"
        ));
    }
    let frame = take(4, frame_len)?;
    let hash = u64::from_le_bytes(frame[..8].try_into().expect("8 bytes"));
    let seed = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
    let plen = u16_at(4 + 16)?;
    let glen = u16_at(4 + 18)?;
    let alen = u16_at(4 + 20)?;
    if FRAME_FIXED + plen + glen + alen > frame_len {
        return Err("label lengths exceed the frame".to_string());
    }
    let strings = &frame[FRAME_FIXED..];
    let utf8 = |range: std::ops::Range<usize>, what: &str| -> Result<String, String> {
        std::str::from_utf8(&strings[range])
            .map(str::to_string)
            .map_err(|_| format!("{what} is not UTF-8"))
    };
    let key = TrialKey {
        protocol: utf8(0..plen, "protocol label")?,
        graph: utf8(plen..plen + glen, "graph label")?,
        partitioner: utf8(plen + glen..plen + glen + alen, "partitioner label")?,
        seed,
    };
    let record_json = utf8(plen + glen + alen..strings.len(), "record payload")?;
    let expected = line_hash(&key, &record_json);
    if hash != expected {
        return Err(format!(
            "integrity hash {hash:016x} does not match key {key} + record (expected {expected:016x})"
        ));
    }
    Ok((Entry { key, record_json }, 4 + frame_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> TrialKey {
        TrialKey {
            protocol: "edge/theorem2".to_string(),
            graph: "gnp(n=30,p=0.15)".to_string(),
            partitioner: "alternating".to_string(),
            seed,
        }
    }

    fn segment_of(records: &[(TrialKey, &str)]) -> Vec<u8> {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        for (k, r) in records {
            bytes.extend_from_slice(&encode(k, r).expect("encodes"));
        }
        bytes
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        let records = [
            (key(0), r#"{"bits":12,"ok":true}"#),
            (key(u64::MAX), r#"{"metrics":{"x":0.5},"err":null}"#),
            (key(1 << 60), "{}"),
        ];
        let load = decode_all(&segment_of(&records));
        assert!(load.error.is_none(), "{:?}", load.error);
        assert_eq!(load.entries.len(), 3);
        for ((k, r), e) in records.iter().zip(&load.entries) {
            assert_eq!(&e.key, k);
            assert_eq!(e.record_json, *r);
        }
    }

    #[test]
    fn torn_tail_keeps_the_prefix() {
        let bytes = segment_of(&[(key(0), r#"{"a":1}"#), (key(1), r#"{"b":2}"#)]);
        for cut in 1..40 {
            let torn = &bytes[..bytes.len() - cut];
            let load = decode_all(torn);
            assert!(load.error.is_some(), "cut {cut} must be detected");
            assert_eq!(load.entries.len(), 1, "cut {cut} keeps the intact record");
            assert!(load.good_bytes <= torn.len());
        }
    }

    #[test]
    fn flipped_byte_is_a_hash_mismatch() {
        let mut bytes = segment_of(&[(key(3), r#"{"bits":9}"#)]);
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40; // flip inside the payload
        let load = decode_all(&bytes);
        assert_eq!(load.entries.len(), 0);
        assert!(
            load.error.as_deref().unwrap_or("").contains("integrity"),
            "{:?}",
            load.error
        );
    }

    #[test]
    fn bad_magic_is_rejected_up_front() {
        let mut bytes = segment_of(&[(key(0), "{}")]);
        bytes[0] = b'X';
        let load = decode_all(&bytes);
        assert_eq!(load.entries.len(), 0);
        assert_eq!(load.good_bytes, 0);
        assert!(load.error.is_some());
    }

    #[test]
    fn oversized_label_refuses_to_encode() {
        let mut k = key(0);
        k.protocol = "p".repeat(u16::MAX as usize + 1);
        assert!(encode(&k, "{}").is_err());
    }
}
