//! `bichrome-store` — the persistent campaign result store.
//!
//! Every trial a campaign executes is identified by a *canonical cell
//! identity* — protocol label, graph-spec display string, partitioner
//! display string, trial seed — plus the store's pinned on-disk
//! [`FORMAT_VERSION`]. The store persists one record per identity and
//! indexes it by a content address derived from that identity through
//! the workspace's SplitMix64 seed machinery
//! ([`TrialKey::content_hash`]), so re-running a campaign skips every
//! trial the store already holds: a killed run resumes where it
//! stopped, and extending a seed axis only computes the new suffix.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/meta.json              pinned {"magic", "format_version"} —
//!                              written atomically (temp file + rename)
//! <dir>/trials.jsonl           the v1 JSON-lines trial log; still
//!                              loaded, never appended to anymore
//! <dir>/segments/seg-NNNNNNNN.bcs
//!                              v2 binary segments (see [`mod@segment`]
//!                              docs for the frame format); all new
//!                              writes land here, rolled to a fresh
//!                              segment at a configurable size bound
//! ```
//!
//! The record payload is opaque to this crate (the runner serializes
//! its `TrialRecord`s into it). Every stored record — v1 line or v2
//! frame — carries the same integrity hash over the key fields *and*
//! the payload bytes, so corruption of either is detected at load and
//! never served as a cached result.
//!
//! # Durability model
//!
//! * `meta.json` is always written via temp file + rename, so a crash
//!   can never leave a half-written store header.
//! * Trial appends go to the active v2 segment through a buffered
//!   writer that is flushed every [`StoreConfig::flush_every`] records
//!   (default: every record, matching the original per-line flush)
//!   and always on [`Store::flush`], segment roll, and drop. A crash
//!   can therefore tear at most the unflushed tail of one segment,
//!   which loading handles *per segment*: each segment independently
//!   keeps its longest well-formed prefix, reports what was dropped
//!   ([`Store::salvage`]), and is atomically truncated to the good
//!   prefix so later appends never extend a corrupt tail. Damage in
//!   one segment never discards records in another.
//! * Compaction ([`Store::compact`]) rewrites the live records into a
//!   fresh `segments.tmp/` directory and installs it with a rename
//!   dance (`segments` → `segments.old`, `segments.tmp` → `segments`,
//!   then delete the old data). Opening a store repairs any crash
//!   window of that dance: either the old data or the complete new
//!   data survives, never a mix.
//! * Opening a store whose `format_version` differs from this
//!   build's is an error, never a silent reinterpretation.
//!   [`FORMAT_VERSION`] is unchanged by v2: the version pins *key
//!   addressing and hash chain*, which v1 lines and v2 frames share —
//!   a store may hold both, and `merge` unions any two stores of this
//!   version.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod segment;
pub mod v1;

use bichrome_comm::PublicCoin;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// The pinned on-disk format version. Bump it whenever the *meaning*
/// of a stored record changes; stores written by other versions are
/// rejected at open time instead of being silently reinterpreted.
/// (The v1→v2 move changed only the framing — JSON lines to binary
/// frames — under the same key addressing and integrity hash, so both
/// share version 1 and coexist in one store.)
pub const FORMAT_VERSION: u64 = 1;

/// The magic string identifying a directory as a bichrome store.
const MAGIC: &str = "bichrome-store";

/// The v1 trial-log filename inside a store directory.
const LOG_FILE: &str = "trials.jsonl";

/// The metadata filename inside a store directory.
const META_FILE: &str = "meta.json";

/// The v2 segment directory name, plus the staging and retirement
/// names used by the compaction rename dance.
const SEGMENTS_DIR: &str = "segments";
const SEGMENTS_TMP: &str = "segments.tmp";
const SEGMENTS_OLD: &str = "segments.old";

/// Stream tag under which trial identities are folded into content
/// hashes (disjoint from the runner's graph/partition/protocol seed
/// tags, which live in the `0x9A27_xxxx` range).
const KEY_TAG: u64 = 0x9A27_0057;

/// The canonical identity of one campaign trial — the unit of
/// deduplication. Two trials with equal keys are *the same
/// computation* (the executor derives every random stream from these
/// fields), so the store keeps exactly one live record per key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrialKey {
    /// The protocol-axis label (registry key or explicit label).
    pub protocol: String,
    /// The graph spec's canonical `Display` string.
    pub graph: String,
    /// The partitioner-axis label: a `Partitioner` `Display` string,
    /// or the campaign's per-seed default label (the default
    /// partitioner is itself derived from `seed`, so the label plus
    /// the seed still pins the computation).
    pub partitioner: String,
    /// The trial seed.
    pub seed: u64,
}

impl TrialKey {
    /// The key's content address: every field folded into a 64-bit
    /// value through the tagged SplitMix64 subcoin chain (the same
    /// mixer the runner's seed derivation uses), starting from
    /// [`FORMAT_VERSION`]. Used to address records on disk; lookups
    /// always confirm full key equality, so a hash collision can
    /// never alias two different trials.
    pub fn content_hash(&self) -> u64 {
        let mut coin = PublicCoin::new(FORMAT_VERSION).subcoin(KEY_TAG);
        for field in [&self.protocol, &self.graph, &self.partitioner] {
            coin = fold_str(coin, field);
        }
        coin.subcoin(self.seed).seed()
    }
}

impl fmt::Display for TrialKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} / {} @ seed {}",
            self.protocol, self.graph, self.partitioner, self.seed
        )
    }
}

/// Folds a string into a [`PublicCoin`] chain: length first, then
/// each 8-byte little-endian chunk (zero-padded), so distinct strings
/// — including prefix pairs — follow distinct subcoin paths.
fn fold_str(coin: PublicCoin, s: &str) -> PublicCoin {
    let mut coin = coin.subcoin(s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        coin = coin.subcoin(u64::from_le_bytes(word));
    }
    coin
}

/// The integrity hash of one stored record: the key's content address
/// chained over the record payload bytes, so corruption of *either*
/// the identity fields or the record is detected at load (and the
/// record dropped as part of the salvage), never served as a cached
/// result. Shared by the v1 line and v2 frame formats.
pub(crate) fn line_hash(key: &TrialKey, record_json: &str) -> u64 {
    fold_str(PublicCoin::new(key.content_hash()), record_json).seed()
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem I/O failed; the first field names the path.
    Io(PathBuf, std::io::Error),
    /// The directory's `meta.json` declares a different format
    /// version than this build writes.
    VersionMismatch {
        /// The version found on disk.
        found: u64,
        /// The version this build supports ([`FORMAT_VERSION`]).
        expected: u64,
    },
    /// `meta.json` exists but is not a valid store header.
    BadMeta(String),
    /// [`Store::merge`] found two different payloads stored for the
    /// same trial identity — the stores disagree on a computation
    /// that the key pins completely, so the union is refused rather
    /// than silently picking a side.
    MergeConflict {
        /// The identity both stores hold, with different payloads.
        key: TrialKey,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "store I/O on {}: {e}", path.display()),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "store format version {found} is not the supported version {expected} \
                 (refusing to reinterpret old data)"
            ),
            StoreError::BadMeta(msg) => write!(f, "store meta.json is invalid: {msg}"),
            StoreError::MergeConflict { key } => write!(
                f,
                "merge conflict: the stores hold different records for {key} \
                 (refusing to pick a side)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// What corrupt store data was reduced to at load time, aggregated
/// over the v1 log and every v2 segment (damage is detected and
/// truncated *per segment*, so one torn file never discards records
/// in another).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// Live records kept across the whole store.
    pub kept: usize,
    /// Total bytes discarded (summed over every damaged file).
    pub dropped_bytes: usize,
    /// The first parse failure encountered.
    pub error: String,
}

impl fmt::Display for Salvage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "salvaged {} record(s), dropped {} trailing byte(s): {}",
            self.kept, self.dropped_bytes, self.error
        )
    }
}

/// One stored trial: its identity plus the opaque record payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The trial's canonical identity.
    pub key: TrialKey,
    /// The record payload, exactly as the producer serialized it
    /// (one JSON object, no newlines).
    pub record_json: String,
}

/// A one-shot injectable I/O failure, armed with
/// [`Store::inject_fault`] and consumed by the next operation it
/// applies to. This is the store's end of the workspace chaos layer
/// (`bichrome-comm`'s `FaultPlan` is the wire's): crash-recovery
/// tests get a *deterministic* torn write or failed rename at an
/// exact point instead of relying on `kill -9` timing, and every
/// firing is counted in `bichrome_store_faults_injected_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The next [`Store::append`] writes only the first `keep_bytes`
    /// of its frame to the active segment (then fails), exactly what
    /// a crash mid-write leaves behind. The record is *not* indexed —
    /// as far as the producer knows, the append failed — and the next
    /// open salvages the segment back to its good prefix. Drop the
    /// handle after the tear, as the crashed process would have: more
    /// appends would extend the torn tail.
    TornAppend {
        /// Frame bytes that reach the disk before the "crash".
        keep_bytes: usize,
    },
    /// The next [`Store::checkpoint`] writes `meta.json`'s temp file
    /// but fails before the rename installs it — the atomic-write
    /// crash window. The store directory keeps its old (valid) meta,
    /// so a reopen must load everything the checkpoint had flushed.
    FailRename,
}

/// Tuning knobs for a [`Store`]. The defaults reproduce the original
/// durability behavior (flush every record) with 8 MiB segments.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Roll to a fresh segment once the active one reaches this many
    /// bytes (a single oversized record may still exceed it — a
    /// segment always holds at least one record).
    pub segment_bytes: usize,
    /// Flush the active segment to the OS every this-many appended
    /// records. `1` (the default) flushes per record; larger values
    /// batch syscalls for write-heavy runs. Rolling, dropping, or
    /// [`Store::flush`]ing always flushes regardless.
    pub flush_every: usize,
    /// [`Store::maybe_compact`] rewrites the store once at least this
    /// fraction of its records are dead (superseded by a later write
    /// for the same key).
    pub compact_dead_ratio: f64,
    /// …but never bothers below this many total records.
    pub compact_min_records: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_bytes: 8 << 20,
            flush_every: 1,
            compact_dead_ratio: 0.5,
            compact_min_records: 1024,
        }
    }
}

/// The segment currently open for appends.
#[derive(Debug)]
struct ActiveSegment {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Bytes written to the file so far (header included).
    bytes: usize,
    /// Records appended since the last flush.
    unflushed: usize,
}

/// Cached process-registry handles for the store's observability
/// counters: looked up once per opened store, so the append/flush
/// path adds only lock-free atomic increments.
#[derive(Debug, Clone)]
struct StoreMetrics {
    appends: bichrome_obs::Counter,
    flushes: bichrome_obs::Counter,
    flush_nanos: bichrome_obs::Histogram,
    checkpoints: bichrome_obs::Counter,
    segments_loaded: bichrome_obs::Counter,
    salvage_dropped_bytes: bichrome_obs::Counter,
}

impl StoreMetrics {
    fn new() -> StoreMetrics {
        StoreMetrics {
            appends: bichrome_obs::counter("bichrome_store_appends_total"),
            flushes: bichrome_obs::counter("bichrome_store_flushes_total"),
            flush_nanos: bichrome_obs::histogram("bichrome_store_flush_nanos"),
            checkpoints: bichrome_obs::counter("bichrome_store_checkpoints_total"),
            segments_loaded: bichrome_obs::counter("bichrome_store_segments_loaded_total"),
            salvage_dropped_bytes: bichrome_obs::counter(
                "bichrome_store_salvage_dropped_bytes_total",
            ),
        }
    }
}

/// A persistent trial store rooted at one directory. See the
/// [module docs](self) for the layout and durability model.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    /// Every loaded/appended record in log order, including dead
    /// (superseded) ones; `index` points at the live record per key.
    entries: Vec<Entry>,
    index: HashMap<TrialKey, usize>,
    salvage: Option<Salvage>,
    active: Option<ActiveSegment>,
    /// The newest on-disk segment after load (path, size), if it has
    /// room to take more appends.
    tail: Option<(PathBuf, usize)>,
    /// Id for the next segment file to create.
    next_segment: u64,
    /// Cached observability handles (see [`StoreMetrics`]).
    metrics: StoreMetrics,
    /// The armed one-shot fault, if any (see [`StoreFault`]).
    fault: Option<StoreFault>,
}

impl Store {
    /// Opens the store at `dir` with default tuning, creating the
    /// directory and an empty store if nothing is there yet. Loads
    /// the v1 log and every v2 segment (segments in parallel),
    /// truncating each damaged file (atomically) at its first
    /// malformed record — see [`Store::salvage`] for what, if
    /// anything, was dropped.
    pub fn open_or_create(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Store::open_or_create_with(dir, StoreConfig::default())
    }

    /// [`Store::open_or_create`] with explicit tuning.
    pub fn open_or_create_with(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<Store, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(dir.clone(), e))?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            check_meta(&meta_path)?;
        } else {
            let mut w = json::Writer::object();
            w.field_str("magic", MAGIC);
            w.field_u64("format_version", FORMAT_VERSION);
            atomic_write(&meta_path, (w.finish() + "\n").as_bytes())?;
        }
        recover_compaction(&dir)?;
        let segments_dir = dir.join(SEGMENTS_DIR);
        fs::create_dir_all(&segments_dir).map_err(|e| StoreError::Io(segments_dir, e))?;
        let mut store = Store {
            dir,
            config,
            entries: Vec::new(),
            index: HashMap::new(),
            salvage: None,
            active: None,
            tail: None,
            next_segment: 0,
            metrics: StoreMetrics::new(),
            fault: None,
        };
        store.load()?;
        Ok(store)
    }

    /// Opens an *existing* store at `dir`; unlike
    /// [`Store::open_or_create`] this fails if the directory is not
    /// already a store (the right behavior for read commands like
    /// `report` and `diff`, where a typo'd path should error, not
    /// materialize an empty store).
    pub fn open_existing(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Store::open_existing_with(dir, StoreConfig::default())
    }

    /// [`Store::open_existing`] with explicit tuning.
    pub fn open_existing_with(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<Store, StoreError> {
        let dir = dir.into();
        let meta_path = dir.join(META_FILE);
        if !meta_path.exists() {
            return Err(StoreError::BadMeta(format!(
                "{} is not a bichrome store (no {META_FILE})",
                dir.display()
            )));
        }
        Store::open_or_create_with(dir, config)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's tuning knobs.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of live stored trials (one per distinct key).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no trials.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records on disk that are superseded by a later write for the
    /// same key — reclaimable by [`Store::compact`].
    pub fn dead_records(&self) -> usize {
        self.entries.len() - self.index.len()
    }

    /// The fraction of on-disk records that are dead (0.0 for an
    /// empty store).
    pub fn dead_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.dead_records() as f64 / self.entries.len() as f64
        }
    }

    /// The live entries, in log (append) order of their current
    /// version.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, e)| self.index.get(&e.key) == Some(i))
            .map(|(_, e)| e)
    }

    /// The record payload stored for `key`, if any.
    pub fn get(&self, key: &TrialKey) -> Option<&str> {
        self.index
            .get(key)
            .map(|&i| self.entries[i].record_json.as_str())
    }

    /// What the last load dropped from corrupt files (`None` when
    /// everything was fully intact).
    pub fn salvage(&self) -> Option<&Salvage> {
        self.salvage.as_ref()
    }

    /// Arms a one-shot [`StoreFault`]: the next operation it applies
    /// to fires it (once) and fails as the real I/O failure would.
    /// Arming again replaces an unfired fault.
    pub fn inject_fault(&mut self, fault: StoreFault) {
        self.fault = Some(fault);
    }

    /// Fires the armed fault if it matches, consuming it.
    fn take_fault(&mut self, want: impl Fn(&StoreFault) -> bool) -> Option<StoreFault> {
        if self.fault.as_ref().is_some_and(want) {
            let fault = self.fault.take();
            bichrome_obs::counter("bichrome_store_faults_injected_total").inc();
            return fault;
        }
        None
    }

    /// The store's v2 segment files, oldest first (the active segment
    /// included once it has received an append).
    pub fn segments(&self) -> Result<Vec<PathBuf>, StoreError> {
        list_segments(&self.dir.join(SEGMENTS_DIR))
    }

    /// Appends one record to the active v2 segment, rolling to a new
    /// segment at the configured size bound. The write is flushed per
    /// [`StoreConfig::flush_every`]. A key already present is
    /// overwritten in the index (last write wins, the old record
    /// becomes dead) but producers are expected to append only
    /// missing keys.
    pub fn append(&mut self, key: TrialKey, record_json: String) -> Result<(), StoreError> {
        debug_assert!(
            !record_json.contains('\n'),
            "record payloads must be single-line JSON"
        );
        let frame = segment::encode(&key, &record_json).map_err(|msg| {
            StoreError::Io(
                self.dir.clone(),
                std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
            )
        })?;
        if let Some(StoreFault::TornAppend { keep_bytes }) =
            self.take_fault(|f| matches!(f, StoreFault::TornAppend { .. }))
        {
            // The "crash": part of the frame reaches the disk, the
            // append fails, and the record is never indexed. The next
            // open salvages the segment back to its good prefix.
            let keep = keep_bytes.min(frame.len());
            let active = self.ensure_active()?;
            let path = active.path.clone();
            active
                .writer
                .write_all(&frame[..keep])
                .and_then(|()| active.writer.flush())
                .map_err(|e| StoreError::Io(path.clone(), e))?;
            active.bytes += keep;
            return Err(StoreError::Io(
                path,
                std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!(
                        "injected fault: append torn after {keep} of {} frame bytes",
                        frame.len()
                    ),
                ),
            ));
        }
        if let Some(active) = &self.active {
            if active.bytes + frame.len() > self.config.segment_bytes
                && active.bytes > segment::SEGMENT_MAGIC.len()
            {
                self.roll()?;
            }
        }
        let flush_every = self.config.flush_every.max(1);
        let metrics = self.metrics.clone();
        let active = self.ensure_active()?;
        let path = active.path.clone();
        active
            .writer
            .write_all(&frame)
            .map_err(|e| StoreError::Io(path.clone(), e))?;
        active.bytes += frame.len();
        active.unflushed += 1;
        metrics.appends.inc();
        if active.unflushed >= flush_every {
            let flush_started = std::time::Instant::now();
            active.writer.flush().map_err(|e| StoreError::Io(path, e))?;
            active.unflushed = 0;
            metrics.flushes.inc();
            metrics
                .flush_nanos
                .observe(flush_started.elapsed().as_nanos() as u64);
        }
        self.index.insert(key.clone(), self.entries.len());
        self.entries.push(Entry { key, record_json });
        Ok(())
    }

    /// Flushes any buffered appends to the OS. Called automatically
    /// per [`StoreConfig::flush_every`], on roll, and on drop; call
    /// it explicitly on idle when batching is enabled.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if let Some(active) = &mut self.active {
            let flush_started = std::time::Instant::now();
            active
                .writer
                .flush()
                .map_err(|e| StoreError::Io(active.path.clone(), e))?;
            active.unflushed = 0;
            self.metrics.flushes.inc();
            self.metrics
                .flush_nanos
                .observe(flush_started.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Flushes and seals the active segment; the next append starts a
    /// fresh one.
    pub fn roll(&mut self) -> Result<(), StoreError> {
        self.flush()?;
        self.active = None;
        self.tail = None;
        Ok(())
    }

    /// A full durability point: flushes and rolls the active segment,
    /// rewrites `meta.json` atomically, and runs
    /// [`Store::maybe_compact`]. This is what graceful shutdown calls.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.metrics.checkpoints.inc();
        self.roll()?;
        let mut w = json::Writer::object();
        w.field_str("magic", MAGIC);
        w.field_u64("format_version", FORMAT_VERSION);
        let meta = self.dir.join(META_FILE);
        if self
            .take_fault(|f| matches!(f, StoreFault::FailRename))
            .is_some()
        {
            // The "crash": the temp file is written but the rename
            // never installs it — the atomic-write window. The old
            // meta.json stays valid, so a reopen loads everything the
            // roll above already flushed.
            let tmp = meta.with_extension("tmp");
            fs::write(&tmp, (w.finish() + "\n").as_bytes())
                .map_err(|e| StoreError::Io(tmp.clone(), e))?;
            return Err(StoreError::Io(
                meta,
                std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected fault: meta.json rename failed",
                ),
            ));
        }
        atomic_write(&meta, (w.finish() + "\n").as_bytes())?;
        self.maybe_compact()?;
        Ok(())
    }

    /// Runs [`Store::compact`] if the dead-record ratio has reached
    /// [`StoreConfig::compact_dead_ratio`] (and the store is at least
    /// [`StoreConfig::compact_min_records`] records). Returns whether
    /// a compaction ran.
    pub fn maybe_compact(&mut self) -> Result<bool, StoreError> {
        if self.entries.len() >= self.config.compact_min_records
            && self.dead_ratio() >= self.config.compact_dead_ratio
        {
            self.compact()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Rewrites the store to exactly its live records: fresh v2
    /// segments are staged in `segments.tmp/` and installed with an
    /// atomic rename dance, after which the v1 log and dead records
    /// are gone. Crash-safe: opening a store repairs any interrupted
    /// window of the dance (see `recover_compaction` internals),
    /// ending with either the old data or the complete new data.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        self.roll()?;
        let err = |p: &Path| {
            let p = p.to_path_buf();
            move |e| StoreError::Io(p, e)
        };
        let tmp = self.dir.join(SEGMENTS_TMP);
        if tmp.exists() {
            fs::remove_dir_all(&tmp).map_err(err(&tmp))?;
        }
        fs::create_dir_all(&tmp).map_err(err(&tmp))?;

        // Stage the live records into fresh segments.
        let live: Vec<Entry> = self.iter().cloned().collect();
        let mut id = 0u64;
        let mut writer: Option<(PathBuf, BufWriter<File>, usize)> = None;
        for entry in &live {
            let frame = segment::encode(&entry.key, &entry.record_json).map_err(|msg| {
                StoreError::Io(
                    tmp.clone(),
                    std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
                )
            })?;
            let needs_new = match &writer {
                Some((_, _, bytes)) => {
                    bytes + frame.len() > self.config.segment_bytes
                        && *bytes > segment::SEGMENT_MAGIC.len()
                }
                None => true,
            };
            if needs_new {
                if let Some((path, mut w, _)) = writer.take() {
                    w.flush().map_err(err(&path))?;
                }
                let path = tmp.join(segment_name(id));
                id += 1;
                let mut w = BufWriter::new(File::create(&path).map_err(err(&path))?);
                w.write_all(segment::SEGMENT_MAGIC).map_err(err(&path))?;
                writer = Some((path, w, segment::SEGMENT_MAGIC.len()));
            }
            let (path, w, bytes) = writer.as_mut().expect("writer just ensured");
            w.write_all(&frame).map_err(err(path))?;
            *bytes += frame.len();
        }
        if let Some((path, mut w, _)) = writer.take() {
            w.flush().map_err(err(&path))?;
        }

        // Install: segments → segments.old, segments.tmp → segments,
        // then delete the superseded data. `open` repairs any crash
        // window in between.
        let segments = self.dir.join(SEGMENTS_DIR);
        let old = self.dir.join(SEGMENTS_OLD);
        if old.exists() {
            fs::remove_dir_all(&old).map_err(err(&old))?;
        }
        fs::rename(&segments, &old).map_err(err(&segments))?;
        fs::rename(&tmp, &segments).map_err(err(&tmp))?;
        let log = self.dir.join(LOG_FILE);
        match fs::remove_file(&log) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(log, e)),
        }
        fs::remove_dir_all(&old).map_err(err(&old))?;

        // The in-memory state now mirrors the compacted disk.
        self.entries = live;
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key.clone(), i))
            .collect();
        self.next_segment = id;
        self.tail = None;
        Ok(())
    }

    /// Unions two stores into a third at `out_dir` (created via
    /// [`Store::open_or_create`], so it may also be an existing store
    /// to merge *into*). Records agreeing on key and payload dedupe;
    /// two different payloads for the same key are a
    /// [`StoreError::MergeConflict`] — the key pins the computation
    /// completely, so disagreement means one side is wrong and no
    /// silent winner is picked. On conflict the output directory is
    /// left with whatever was merged before the conflict was found.
    pub fn merge(a: &Store, b: &Store, out_dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let mut out = Store::open_or_create(out_dir)?;
        for entry in a.iter().chain(b.iter()) {
            match out.get(&entry.key) {
                Some(existing) if existing == entry.record_json => {}
                Some(_) => {
                    return Err(StoreError::MergeConflict {
                        key: entry.key.clone(),
                    })
                }
                None => out.append(entry.key.clone(), entry.record_json.clone())?,
            }
        }
        out.flush()?;
        Ok(out)
    }

    /// Opens (or creates) the segment that appends go to: the on-disk
    /// tail segment if it still has room, else a fresh file.
    fn ensure_active(&mut self) -> Result<&mut ActiveSegment, StoreError> {
        if self.active.is_none() {
            let reuse = match self.tail.take() {
                Some((path, bytes)) if bytes < self.config.segment_bytes => Some((path, bytes)),
                _ => None,
            };
            let (path, bytes, fresh) = match reuse {
                Some((path, bytes)) => (path, bytes, false),
                None => {
                    let path = self
                        .dir
                        .join(SEGMENTS_DIR)
                        .join(segment_name(self.next_segment));
                    self.next_segment += 1;
                    (path, segment::SEGMENT_MAGIC.len(), true)
                }
            };
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| StoreError::Io(path.clone(), e))?;
            let mut writer = BufWriter::new(file);
            if fresh {
                writer
                    .write_all(segment::SEGMENT_MAGIC)
                    .and_then(|()| writer.flush())
                    .map_err(|e| StoreError::Io(path.clone(), e))?;
            }
            self.active = Some(ActiveSegment {
                path,
                writer,
                bytes,
                unflushed: 0,
            });
        }
        Ok(self.active.as_mut().expect("active just ensured"))
    }

    /// Loads the v1 log and every v2 segment. Damage is truncated
    /// away per file (atomically) and aggregated into one
    /// [`Salvage`] report.
    fn load(&mut self) -> Result<(), StoreError> {
        let mut dropped_bytes = 0usize;
        let mut first_error: Option<String> = None;

        // The v1 JSON-lines log, if this store predates segments (or
        // hasn't been compacted since).
        let log = self.dir.join(LOG_FILE);
        match fs::read_to_string(&log) {
            Ok(text) => {
                let (entries, good_bytes, error) = load_v1(&text);
                for entry in entries {
                    self.index.insert(entry.key.clone(), self.entries.len());
                    self.entries.push(entry);
                }
                if let Some(e) = error {
                    dropped_bytes += text.len() - good_bytes;
                    first_error.get_or_insert(e);
                    atomic_write(&log, &text.as_bytes()[..good_bytes])?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(log, e)),
        }

        // The v2 segments, oldest first; decoded in parallel, applied
        // in order.
        let paths = list_segments(&self.dir.join(SEGMENTS_DIR))?;
        self.metrics.segments_loaded.add(paths.len() as u64);
        for (path, read, load) in load_segments(&paths) {
            let bytes = read.map_err(|e| StoreError::Io(path.clone(), e))?;
            for entry in load.entries {
                self.index.insert(entry.key.clone(), self.entries.len());
                self.entries.push(entry);
            }
            if let Some(e) = load.error {
                dropped_bytes += bytes.len() - load.good_bytes;
                first_error.get_or_insert(e);
                // Repair: truncate this segment to its good prefix
                // (drop it entirely if even the header is gone) so
                // future appends extend clean data. Other segments
                // are unaffected.
                if load.good_bytes == 0 {
                    fs::remove_file(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
                } else {
                    atomic_write(&path, &bytes[..load.good_bytes])?;
                }
            }
        }

        // Remember the newest surviving segment as the append tail.
        self.tail = list_segments(&self.dir.join(SEGMENTS_DIR))?
            .last()
            .map(|path| {
                fs::metadata(path)
                    .map(|m| (path.clone(), m.len() as usize))
                    .map_err(|e| StoreError::Io(path.clone(), e))
            })
            .transpose()?;
        self.next_segment = paths
            .last()
            .and_then(|p| segment_id(p))
            .map_or(0, |id| id + 1);

        if let Some(error) = first_error {
            self.metrics.salvage_dropped_bytes.add(dropped_bytes as u64);
            self.salvage = Some(Salvage {
                kept: self.index.len(),
                dropped_bytes,
                error,
            });
        }
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort: push any batched appends to the OS. (BufWriter
        // would flush on drop anyway; doing it here keeps the intent
        // explicit and ignores errors in one place.)
        let _ = self.flush();
    }
}

/// Parses a v1 log's text, returning the good-prefix entries, the
/// byte length of that prefix, and the failure that ended it (if
/// any).
fn load_v1(text: &str) -> (Vec<Entry>, usize, Option<String>) {
    let mut entries = Vec::new();
    let mut good_bytes = 0usize;
    for line in text.split_inclusive('\n') {
        let complete = line.ends_with('\n');
        let body = line.trim_end_matches(['\n', '\r']);
        if body.is_empty() && complete {
            good_bytes += line.len();
            continue;
        }
        match v1::decode_line(body) {
            Ok(entry) if complete => {
                entries.push(entry);
                good_bytes += line.len();
            }
            Ok(_) => {
                return (
                    entries,
                    good_bytes,
                    Some("final line is missing its newline (torn append)".to_string()),
                );
            }
            Err(e) => return (entries, good_bytes, Some(e)),
        }
    }
    (entries, good_bytes, None)
}

/// Reads and decodes every segment, fanning the (I/O + decode) work
/// across the workspace worker pool and returning results in the
/// given path order (`par_iter` preserves input order).
#[allow(clippy::type_complexity)]
fn load_segments(
    paths: &[PathBuf],
) -> Vec<(
    PathBuf,
    Result<Vec<u8>, std::io::Error>,
    segment::SegmentLoad,
)> {
    use rayon::prelude::*;
    paths.par_iter().map(|p| load_one_segment(p)).collect()
}

/// Reads and decodes one segment file.
fn load_one_segment(
    path: &Path,
) -> (
    PathBuf,
    Result<Vec<u8>, std::io::Error>,
    segment::SegmentLoad,
) {
    match fs::read(path) {
        Ok(bytes) => {
            let load = segment::decode_all(&bytes);
            (path.to_path_buf(), Ok(bytes), load)
        }
        Err(e) => (
            path.to_path_buf(),
            Err(e),
            segment::SegmentLoad {
                entries: Vec::new(),
                good_bytes: 0,
                error: None,
            },
        ),
    }
}

/// The canonical filename for segment `id`.
fn segment_name(id: u64) -> String {
    format!("seg-{id:08}.bcs")
}

/// Parses a segment id back out of a filename (ignores foreign
/// files).
fn segment_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?
        .strip_suffix(".bcs")?
        .parse()
        .ok()
}

/// The store's segment files, sorted oldest-id first. A missing
/// directory is an empty list.
fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut paths: Vec<(u64, PathBuf)> = Vec::new();
    let read = match fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::Io(dir.to_path_buf(), e)),
    };
    for dirent in read {
        let dirent = dirent.map_err(|e| StoreError::Io(dir.to_path_buf(), e))?;
        let path = dirent.path();
        if let Some(id) = segment_id(&path) {
            paths.push((id, path));
        }
    }
    paths.sort();
    Ok(paths.into_iter().map(|(_, p)| p).collect())
}

/// Repairs a compaction interrupted by a crash. The dance in
/// [`Store::compact`] is: stage `segments.tmp`, rename `segments` →
/// `segments.old`, rename `segments.tmp` → `segments`, delete
/// `trials.jsonl`, delete `segments.old`. Each window leaves a
/// distinct directory shape, so recovery is unambiguous:
///
/// * `tmp` + `segments` (no `old`): crashed before the commit point —
///   the staging dir may be incomplete, discard it.
/// * `tmp` + `old` (no `segments`): crashed mid-commit — the staging
///   dir is complete (it's written and flushed before any rename), so
///   finish the dance.
/// * `old` + `segments` (no `tmp`): crashed after the commit — just
///   delete the superseded data.
fn recover_compaction(dir: &Path) -> Result<(), StoreError> {
    let err = |p: &Path| {
        let p = p.to_path_buf();
        move |e| StoreError::Io(p, e)
    };
    let segments = dir.join(SEGMENTS_DIR);
    let tmp = dir.join(SEGMENTS_TMP);
    let old = dir.join(SEGMENTS_OLD);
    if tmp.exists() {
        if !segments.exists() && old.exists() {
            fs::rename(&tmp, &segments).map_err(err(&tmp))?;
        } else {
            fs::remove_dir_all(&tmp).map_err(err(&tmp))?;
            return Ok(());
        }
    }
    if old.exists() {
        if segments.exists() {
            let log = dir.join(LOG_FILE);
            match fs::remove_file(&log) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StoreError::Io(log, e)),
            }
            fs::remove_dir_all(&old).map_err(err(&old))?;
        } else {
            // No promoted segments at all: restore the superseded
            // data rather than lose it.
            fs::rename(&old, &segments).map_err(err(&old))?;
        }
    }
    Ok(())
}

/// Verifies an existing `meta.json`.
fn check_meta(path: &Path) -> Result<(), StoreError> {
    let text = fs::read_to_string(path).map_err(|e| StoreError::Io(path.to_path_buf(), e))?;
    let v = json::Value::parse(&text).map_err(StoreError::BadMeta)?;
    let obj = v
        .as_object()
        .ok_or_else(|| StoreError::BadMeta("meta.json is not an object".to_string()))?;
    match obj.get("magic").and_then(json::Value::as_str) {
        Some(MAGIC) => {}
        other => {
            return Err(StoreError::BadMeta(format!(
                "magic is {other:?}, expected {MAGIC:?}"
            )))
        }
    }
    let found = obj
        .get("format_version")
        .and_then(json::Value::as_u64)
        .ok_or_else(|| StoreError::BadMeta("missing format_version".to_string()))?;
    if found != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found,
            expected: FORMAT_VERSION,
        });
    }
    Ok(())
}

/// Writes a file atomically: content goes to a sibling temp file
/// which is then renamed over the target, so readers (and crashes)
/// see either the old content or the new, never a torn write.
fn atomic_write(path: &Path, content: &[u8]) -> Result<(), StoreError> {
    let err = |e| StoreError::Io(path.to_path_buf(), e);
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp).map_err(err)?;
        file.write_all(content)
            .and_then(|()| file.flush())
            .map_err(err)?;
    }
    fs::rename(&tmp, path).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory (removed on drop).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "bichrome-store-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(seed: u64) -> TrialKey {
        TrialKey {
            protocol: "edge/theorem2".to_string(),
            graph: "near-regular(n=24,d=4)".to_string(),
            partitioner: "alternating".to_string(),
            seed,
        }
    }

    /// The newest segment file of a store directory.
    fn newest_segment(dir: &Path) -> PathBuf {
        list_segments(&dir.join(SEGMENTS_DIR))
            .expect("list segments")
            .last()
            .cloned()
            .expect("at least one segment")
    }

    /// Writes a v1-format store (meta + trials.jsonl) directly, as a
    /// pre-segment build would have left it.
    fn write_v1_store(dir: &Path, records: &[(TrialKey, &str)]) {
        fs::create_dir_all(dir).expect("mkdir");
        fs::write(
            dir.join(META_FILE),
            format!("{{\"magic\":\"{MAGIC}\",\"format_version\":{FORMAT_VERSION}}}\n"),
        )
        .expect("meta");
        let mut log = String::new();
        for (k, r) in records {
            log.push_str(&v1::encode_line(k, r));
        }
        fs::write(dir.join(LOG_FILE), log).expect("log");
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        assert!(store.is_empty());
        store
            .append(key(0), r#"{"bits":12,"ok":true}"#.to_string())
            .expect("append");
        store
            .append(key(1), r#"{"bits":9,"ok":true}"#.to_string())
            .expect("append");
        drop(store);

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 2);
        assert!(store.salvage().is_none());
        assert_eq!(store.get(&key(0)), Some(r#"{"bits":12,"ok":true}"#));
        assert_eq!(store.get(&key(1)), Some(r#"{"bits":9,"ok":true}"#));
        assert_eq!(store.get(&key(2)), None);
        let keys: Vec<u64> = store.iter().map(|e| e.key.seed).collect();
        assert_eq!(keys, vec![0, 1], "log order is append order");
    }

    #[test]
    fn obs_counters_track_appends_flushes_and_checkpoints() {
        // The registry is process-wide and other tests append too, so
        // assert deltas, not absolutes.
        let appends = bichrome_obs::counter("bichrome_store_appends_total");
        let flushes = bichrome_obs::counter("bichrome_store_flushes_total");
        let checkpoints = bichrome_obs::counter("bichrome_store_checkpoints_total");
        let (a0, f0, c0) = (appends.get(), flushes.get(), checkpoints.get());
        let tmp = TempDir::new("obs");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in 0..5 {
            store
                .append(key(seed), r#"{"bits":1,"ok":true}"#.to_string())
                .expect("append");
        }
        store.checkpoint().expect("checkpoint");
        assert!(appends.get() >= a0 + 5, "five appends recorded");
        assert!(flushes.get() >= f0 + 5, "flush_every=1 flushes per append");
        assert!(checkpoints.get() > c0, "one checkpoint recorded");
    }

    #[test]
    fn content_hash_distinguishes_every_field() {
        let base = key(3);
        let mut variants = vec![base.clone()];
        variants.push(TrialKey {
            protocol: "vertex/theorem1".to_string(),
            ..base.clone()
        });
        variants.push(TrialKey {
            graph: "near-regular(n=24,d=5)".to_string(),
            ..base.clone()
        });
        variants.push(TrialKey {
            partitioner: "all-to-bob".to_string(),
            ..base.clone()
        });
        variants.push(TrialKey { seed: 4, ..base });
        let hashes: Vec<u64> = variants.iter().map(TrialKey::content_hash).collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{} vs {}", variants[i], variants[j]);
            }
        }
        // And a field boundary shift does not collide: moving a
        // character between adjacent fields changes the hash.
        let a = TrialKey {
            protocol: "ab".to_string(),
            graph: "c".to_string(),
            ..key(0)
        };
        let b = TrialKey {
            protocol: "a".to_string(),
            graph: "bc".to_string(),
            ..key(0)
        };
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn truncated_segment_salvages_the_good_prefix() {
        let tmp = TempDir::new("salvage");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in 0..5 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }
        drop(store);

        // Tear the segment mid-frame, as a crash mid-append would.
        let seg = newest_segment(&tmp.0);
        let bytes = fs::read(&seg).expect("read segment");
        fs::write(&seg, &bytes[..bytes.len() - 17]).expect("truncate");

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 4, "good prefix survives");
        let salvage = store.salvage().expect("salvage reported");
        assert_eq!(salvage.kept, 4);
        assert!(salvage.dropped_bytes > 0);
        assert!(store.get(&key(3)).is_some());
        assert_eq!(store.get(&key(4)), None, "torn record is gone");
        drop(store);

        // The repair rewrote the segment: a fresh open is clean.
        let store = Store::open_or_create(&tmp.0).expect("after repair");
        assert_eq!(store.len(), 4);
        assert!(store.salvage().is_none(), "repaired segment loads clean");
    }

    #[test]
    fn injected_torn_append_salvages_and_resume_recomputes_the_lost_tail() {
        let tmp = TempDir::new("inject-torn");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in 0..3 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }

        // The chaos point: the next append "crashes" nine bytes in.
        store.inject_fault(StoreFault::TornAppend { keep_bytes: 9 });
        let err = store
            .append(key(3), r#"{"seed":3}"#.to_string())
            .expect_err("injected tear must surface as an append failure");
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(store.get(&key(3)), None, "the torn record is not indexed");
        drop(store);

        // Reopen: the salvage keeps exactly the pre-tear records and
        // truncates the partial frame away.
        let mut store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 3, "good prefix survives the tear");
        let salvage = store.salvage().expect("salvage reported");
        assert_eq!(salvage.kept, 3);
        assert_eq!(salvage.dropped_bytes, 9, "exactly the torn bytes dropped");

        // Resume recomputes exactly the lost tail: one append makes
        // the store whole, and the next open is pristine.
        store
            .append(key(3), r#"{"seed":3}"#.to_string())
            .expect("resume append");
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("after resume");
        assert_eq!(store.len(), 4);
        assert!(store.salvage().is_none(), "resumed store loads clean");
        assert_eq!(store.get(&key(3)), Some(r#"{"seed":3}"#));
    }

    #[test]
    fn injected_rename_failure_never_loses_flushed_records() {
        let tmp = TempDir::new("inject-rename");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in 0..4 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }

        // The chaos point: the checkpoint's meta.json install fails
        // inside the atomic-write window (temp written, no rename).
        store.inject_fault(StoreFault::FailRename);
        let err = store
            .checkpoint()
            .expect_err("injected rename failure must surface");
        assert!(err.to_string().contains("injected fault"), "{err}");
        drop(store);

        // The old meta is still valid and the roll flushed every
        // record: a reopen loses nothing.
        let mut store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 4);
        assert!(store.salvage().is_none());
        // The fault was one-shot: the next checkpoint succeeds.
        store.checkpoint().expect("clean checkpoint");
    }

    #[test]
    fn damage_is_contained_to_one_segment() {
        // Tearing one segment must not discard records in any other —
        // the per-segment salvage that makes a million-record store
        // robust.
        let tmp = TempDir::new("contained");
        let config = StoreConfig {
            segment_bytes: 1, // every record rolls a new segment
            ..StoreConfig::default()
        };
        let mut store = Store::open_or_create_with(&tmp.0, config).expect("create");
        for seed in 0..4 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }
        drop(store);
        let segments = list_segments(&tmp.0.join(SEGMENTS_DIR)).expect("list");
        assert_eq!(segments.len(), 4, "one record per segment");

        // Corrupt the *second* segment.
        let bytes = fs::read(&segments[1]).expect("read");
        fs::write(&segments[1], &bytes[..bytes.len() - 5]).expect("truncate");

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 3, "only the torn segment's record is lost");
        assert!(store.get(&key(0)).is_some());
        assert_eq!(store.get(&key(1)), None);
        assert!(store.get(&key(2)).is_some(), "later segments survive");
        assert!(store.get(&key(3)).is_some());
        assert!(store.salvage().is_some());
    }

    #[test]
    fn v1_store_still_opens_and_upgrades_on_write() {
        let tmp = TempDir::new("v1compat");
        write_v1_store(
            &tmp.0,
            &[(key(0), r#"{"bits":12}"#), (key(1), r#"{"bits":9}"#)],
        );

        let mut store = Store::open_or_create(&tmp.0).expect("open v1");
        assert_eq!(store.len(), 2);
        assert!(store.salvage().is_none());
        assert_eq!(store.get(&key(0)), Some(r#"{"bits":12}"#));

        // New writes go to v2 segments; the v1 log is untouched.
        store
            .append(key(2), r#"{"bits":7}"#.to_string())
            .expect("append");
        drop(store);
        assert!(
            tmp.0.join(LOG_FILE).exists(),
            "v1 log kept until compaction"
        );
        assert_eq!(
            list_segments(&tmp.0.join(SEGMENTS_DIR))
                .expect("list")
                .len(),
            1,
            "the append landed in a v2 segment"
        );
        let store = Store::open_or_create(&tmp.0).expect("reopen mixed");
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(&key(2)), Some(r#"{"bits":7}"#));
    }

    #[test]
    fn v1_corruption_still_salvages() {
        let tmp = TempDir::new("v1salvage");
        write_v1_store(
            &tmp.0,
            &[
                (key(0), r#"{"seed":0}"#),
                (key(1), r#"{"seed":1}"#),
                (key(2), r#"{"seed":2}"#),
            ],
        );
        let log = tmp.0.join(LOG_FILE);
        let text = fs::read_to_string(&log).expect("read");
        fs::write(&log, &text[..text.len() - 17]).expect("truncate");

        let store = Store::open_or_create(&tmp.0).expect("open");
        assert_eq!(store.len(), 2);
        let salvage = store.salvage().expect("reported");
        assert_eq!(salvage.kept, 2);
        assert!(salvage.dropped_bytes > 0);
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("repaired");
        assert!(store.salvage().is_none());
    }

    #[test]
    fn garbage_segment_tail_ends_its_prefix_and_is_dropped() {
        let tmp = TempDir::new("garbage");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store
            .append(key(0), r#"{"seed":0}"#.to_string())
            .expect("append");
        drop(store);
        let seg = newest_segment(&tmp.0);
        let mut bytes = fs::read(&seg).expect("read");
        bytes.extend_from_slice(b"this is not a frame");
        fs::write(&seg, bytes).expect("write");

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 1);
        assert!(store.salvage().is_some());
    }

    #[test]
    fn tampered_payload_is_rejected() {
        // Corruption of the *record payload* must fail the frame's
        // integrity hash — a flipped measurement is as wrong as a
        // flipped identity.
        let tmp = TempDir::new("tamper");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store
            .append(key(0), r#"{"bits":12}"#.to_string())
            .expect("append");
        drop(store);
        let seg = newest_segment(&tmp.0);
        let mut bytes = fs::read(&seg).expect("read");
        let at = bytes.len() - 3; // inside the payload
        bytes[at] ^= 0x01;
        fs::write(&seg, bytes).expect("write");

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 0, "hash mismatch drops the frame");
        let salvage = store.salvage().expect("salvage reported");
        assert!(
            salvage.error.contains("integrity hash"),
            "{}",
            salvage.error
        );
    }

    #[test]
    fn version_mismatch_is_an_error_not_a_reinterpretation() {
        let tmp = TempDir::new("version");
        Store::open_or_create(&tmp.0).expect("create");
        let meta = tmp.0.join(META_FILE);
        fs::write(&meta, r#"{"magic":"bichrome-store","format_version":999}"#).expect("write meta");
        match Store::open_or_create(&tmp.0) {
            Err(StoreError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn open_existing_rejects_non_stores() {
        let tmp = TempDir::new("existing");
        assert!(matches!(
            Store::open_existing(&tmp.0),
            Err(StoreError::BadMeta(_))
        ));
        Store::open_or_create(&tmp.0).expect("create");
        assert!(Store::open_existing(&tmp.0).is_ok());
    }

    #[test]
    fn record_payloads_with_nested_structure_round_trip() {
        let tmp = TempDir::new("nested");
        let payload =
            r#"{"label":"gnp(n=30,p=0.15)","metrics":{"rct_remaining":0.5},"error":null}"#;
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store.append(key(7), payload.to_string()).expect("append");
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        // The payload is stored as raw bytes, so it round-trips
        // byte-exactly.
        assert_eq!(store.get(&key(7)), Some(payload));
    }

    #[test]
    fn full_range_seeds_round_trip_exactly() {
        // u64::MAX does not fit in an f64; the binary frame stores
        // the seed as a little-endian u64, so the full range must
        // survive (the content hash would fail otherwise and the
        // frame would be dropped as corrupt).
        let tmp = TempDir::new("bigseed");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in [u64::MAX, u64::MAX - 1, 1 << 60] {
            store
                .append(key(seed), r#"{"ok":true}"#.to_string())
                .expect("append");
        }
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert!(store.salvage().is_none());
        for seed in [u64::MAX, u64::MAX - 1, 1 << 60] {
            assert_eq!(store.get(&key(seed)), Some(r#"{"ok":true}"#), "{seed}");
        }
    }

    #[test]
    fn segments_roll_at_the_size_bound() {
        let tmp = TempDir::new("roll");
        let config = StoreConfig {
            segment_bytes: 256,
            ..StoreConfig::default()
        };
        let mut store = Store::open_or_create_with(&tmp.0, config).expect("create");
        for seed in 0..20 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }
        let segments = store.segments().expect("list");
        assert!(
            segments.len() > 1,
            "20 × ~90-byte records at a 256-byte bound must roll"
        );
        for path in &segments {
            let len = fs::metadata(path).expect("stat").len();
            // Bound + one frame of slack (rolls happen before the
            // append that would overflow).
            assert!(len <= 256 + 128, "{}: {len} bytes", path.display());
        }
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 20, "all records load across segments");
    }

    #[test]
    fn reopen_continues_the_tail_segment_until_full() {
        let tmp = TempDir::new("tailreuse");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store
            .append(key(0), r#"{"seed":0}"#.to_string())
            .expect("append");
        drop(store);
        let mut store = Store::open_or_create(&tmp.0).expect("reopen");
        store
            .append(key(1), r#"{"seed":1}"#.to_string())
            .expect("append");
        drop(store);
        assert_eq!(
            list_segments(&tmp.0.join(SEGMENTS_DIR))
                .expect("list")
                .len(),
            1,
            "a small tail segment keeps taking appends across opens"
        );
        let store = Store::open_or_create(&tmp.0).expect("final");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn batched_writes_stay_buffered_until_flush() {
        let tmp = TempDir::new("batch");
        let config = StoreConfig {
            flush_every: 100,
            ..StoreConfig::default()
        };
        let mut store = Store::open_or_create_with(&tmp.0, config).expect("create");
        for seed in 0..5 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }
        let seg = newest_segment(&tmp.0);
        let on_disk = fs::metadata(&seg).expect("stat").len() as usize;
        assert_eq!(
            on_disk,
            segment::SEGMENT_MAGIC.len(),
            "with flush_every=100, 5 appends sit in the buffer"
        );
        store.flush().expect("flush");
        let on_disk = fs::metadata(&seg).expect("stat").len() as usize;
        assert!(on_disk > segment::SEGMENT_MAGIC.len(), "flush lands them");
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn drop_flushes_batched_writes() {
        let tmp = TempDir::new("dropflush");
        let config = StoreConfig {
            flush_every: 1_000,
            ..StoreConfig::default()
        };
        let mut store = Store::open_or_create_with(&tmp.0, config).expect("create");
        for seed in 0..7 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 7, "drop flushed the batch");
    }

    #[test]
    fn checkpoint_rolls_and_rewrites_meta() {
        let tmp = TempDir::new("checkpoint");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store
            .append(key(0), r#"{"seed":0}"#.to_string())
            .expect("append");
        store.checkpoint().expect("checkpoint");
        store
            .append(key(1), r#"{"seed":1}"#.to_string())
            .expect("append");
        drop(store);
        assert_eq!(
            list_segments(&tmp.0.join(SEGMENTS_DIR))
                .expect("list")
                .len(),
            2,
            "checkpoint seals the active segment"
        );
        let meta = fs::read_to_string(tmp.0.join(META_FILE)).expect("meta");
        assert!(meta.contains("bichrome-store"));
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn compaction_drops_dead_records_and_the_v1_log() {
        let tmp = TempDir::new("compact");
        write_v1_store(&tmp.0, &[(key(0), r#"{"v":"old"}"#)]);
        let mut store = Store::open_or_create(&tmp.0).expect("open");
        // Supersede the v1 record and add fresh ones.
        store
            .append(key(0), r#"{"v":"new"}"#.to_string())
            .expect("append");
        store
            .append(key(1), r#"{"v":"b"}"#.to_string())
            .expect("append");
        assert_eq!(store.dead_records(), 1);
        assert!(store.dead_ratio() > 0.3);
        store.compact().expect("compact");
        assert_eq!(store.dead_records(), 0);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&key(0)), Some(r#"{"v":"new"}"#));
        assert!(!tmp.0.join(LOG_FILE).exists(), "v1 log folded in");
        assert!(!tmp.0.join(SEGMENTS_OLD).exists());
        assert!(!tmp.0.join(SEGMENTS_TMP).exists());
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.dead_records(), 0);
        assert_eq!(store.get(&key(0)), Some(r#"{"v":"new"}"#));
        assert_eq!(store.get(&key(1)), Some(r#"{"v":"b"}"#));
    }

    #[test]
    fn maybe_compact_respects_the_thresholds() {
        let tmp = TempDir::new("maybe");
        let config = StoreConfig {
            compact_min_records: 4,
            compact_dead_ratio: 0.5,
            ..StoreConfig::default()
        };
        let mut store = Store::open_or_create_with(&tmp.0, config).expect("create");
        store
            .append(key(0), r#"{"v":1}"#.to_string())
            .expect("append");
        store
            .append(key(0), r#"{"v":2}"#.to_string())
            .expect("append");
        // 50% dead but below min_records.
        assert!(!store.maybe_compact().expect("check"), "too few records");
        store
            .append(key(0), r#"{"v":3}"#.to_string())
            .expect("append");
        store
            .append(key(0), r#"{"v":4}"#.to_string())
            .expect("append");
        // 4 records, 75% dead.
        assert!(store.maybe_compact().expect("check"), "threshold reached");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&key(0)), Some(r#"{"v":4}"#));
    }

    #[test]
    fn interrupted_compaction_recovers_at_open() {
        // Simulate every crash window of the rename dance and check
        // that reopening sees either the old data or the complete new
        // data — never a loss.
        let records: Vec<(TrialKey, String)> = (0..3)
            .map(|seed| (key(seed), format!(r#"{{"seed":{seed}}}"#)))
            .collect();
        let populate = |dir: &Path| {
            let mut store = Store::open_or_create(dir).expect("create");
            for (k, r) in &records {
                store.append(k.clone(), r.clone()).expect("append");
            }
        };
        let check_all = |dir: &Path| {
            let store = Store::open_or_create(dir).expect("recovering open");
            assert_eq!(store.len(), 3);
            for (k, r) in &records {
                assert_eq!(store.get(k), Some(r.as_str()));
            }
            assert!(!dir.join(SEGMENTS_TMP).exists());
            assert!(!dir.join(SEGMENTS_OLD).exists());
        };

        // Window 1: crash before the commit point (tmp staged,
        // segments still in place). The half-staged tmp is discarded.
        let tmp = TempDir::new("crash1");
        populate(&tmp.0);
        fs::create_dir_all(tmp.0.join(SEGMENTS_TMP)).expect("stage");
        fs::write(tmp.0.join(SEGMENTS_TMP).join(segment_name(0)), b"junk").expect("junk");
        check_all(&tmp.0);

        // Window 2: crash mid-commit (segments renamed away, tmp not
        // yet promoted). The complete tmp is promoted.
        let tmp = TempDir::new("crash2");
        populate(&tmp.0);
        fs::rename(tmp.0.join(SEGMENTS_DIR), tmp.0.join(SEGMENTS_TMP)).expect("stage=real");
        // A leftover "old" from the dance: stale junk that must lose.
        fs::create_dir_all(tmp.0.join(SEGMENTS_OLD)).expect("old");
        check_all(&tmp.0);

        // Window 3: crash after the commit (old not yet deleted).
        let tmp = TempDir::new("crash3");
        populate(&tmp.0);
        fs::create_dir_all(tmp.0.join(SEGMENTS_OLD)).expect("old");
        fs::write(tmp.0.join(SEGMENTS_OLD).join(segment_name(0)), b"junk").expect("junk");
        check_all(&tmp.0);
    }

    #[test]
    fn merge_unions_disjoint_and_agreeing_stores() {
        let (ta, tb, tout) = (
            TempDir::new("merge-a"),
            TempDir::new("merge-b"),
            TempDir::new("merge-out"),
        );
        let mut a = Store::open_or_create(&ta.0).expect("a");
        a.append(key(0), r#"{"v":"x"}"#.to_string()).expect("a0");
        a.append(key(1), r#"{"v":"y"}"#.to_string()).expect("a1");
        let mut b = Store::open_or_create(&tb.0).expect("b");
        b.append(key(1), r#"{"v":"y"}"#.to_string()).expect("b1");
        b.append(key(2), r#"{"v":"z"}"#.to_string()).expect("b2");

        let out = Store::merge(&a, &b, &tout.0).expect("merge");
        assert_eq!(out.len(), 3, "agreeing overlap dedupes");
        assert_eq!(out.get(&key(0)), Some(r#"{"v":"x"}"#));
        assert_eq!(out.get(&key(1)), Some(r#"{"v":"y"}"#));
        assert_eq!(out.get(&key(2)), Some(r#"{"v":"z"}"#));
        drop(out);
        let out = Store::open_or_create(&tout.0).expect("reopen");
        assert_eq!(out.len(), 3, "merged store persists");
    }

    #[test]
    fn merge_refuses_conflicting_records() {
        let (ta, tb, tout) = (
            TempDir::new("conflict-a"),
            TempDir::new("conflict-b"),
            TempDir::new("conflict-out"),
        );
        let mut a = Store::open_or_create(&ta.0).expect("a");
        a.append(key(0), r#"{"v":"left"}"#.to_string()).expect("a0");
        let mut b = Store::open_or_create(&tb.0).expect("b");
        b.append(key(0), r#"{"v":"right"}"#.to_string())
            .expect("b0");
        match Store::merge(&a, &b, &tout.0) {
            Err(StoreError::MergeConflict { key: k }) => assert_eq!(k, key(0)),
            other => panic!("expected MergeConflict, got {other:?}"),
        }
    }

    #[test]
    fn v1_and_v2_hold_the_same_integrity_hash() {
        // The property that lets both formats share FORMAT_VERSION:
        // a record's hash is identical however it is framed, so a
        // compaction (v1 → v2 rewrite) preserves the hash chain.
        let k = key(42);
        let record = r#"{"bits":12,"metrics":{"x":0.25}}"#;
        let line = v1::encode_line(&k, record);
        let decoded = v1::decode_line(line.trim_end()).expect("v1 decodes");
        assert_eq!(decoded.key, k);
        assert_eq!(decoded.record_json, record);
        // The v2 frame embeds line_hash directly; decoding checks it.
        let frame = segment::encode(&k, record).expect("v2 encodes");
        let mut seg_bytes = segment::SEGMENT_MAGIC.to_vec();
        seg_bytes.extend_from_slice(&frame);
        let load = segment::decode_all(&seg_bytes);
        assert!(load.error.is_none());
        assert_eq!(load.entries[0].key, k);
        assert_eq!(load.entries[0].record_json, record);
    }
}
