//! `bichrome-store` — the persistent campaign result store.
//!
//! Every trial a campaign executes is identified by a *canonical cell
//! identity* — protocol label, graph-spec display string, partitioner
//! display string, trial seed — plus the store's pinned on-disk
//! [`FORMAT_VERSION`]. The store persists one JSON record per
//! identity in an append-only JSONL trial log and indexes it by a
//! content address derived from that identity through the workspace's
//! SplitMix64 seed machinery ([`TrialKey::content_hash`]), so
//! re-running a campaign skips every trial the store already holds:
//! a killed run resumes where it stopped, and extending a seed axis
//! only computes the new suffix.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/meta.json      pinned {"magic", "format_version"} — written
//!                      atomically (temp file + rename)
//! <dir>/trials.jsonl   one line per stored trial:
//!                      {"hash","protocol","graph","partitioner","seed","record"}
//! ```
//!
//! The record payload is opaque to this crate (the runner serializes
//! its `TrialRecord`s into it). Each line's `hash` is an integrity
//! check over the key fields *and* the payload bytes, so corruption
//! of either is detected at load and never served as a cached
//! result.
//!
//! # Durability model
//!
//! * `meta.json` is always written via temp file + rename, so a crash
//!   can never leave a half-written store header.
//! * Trial appends go straight to the log (one line per record,
//!   flushed as workers finish). A crash mid-append can therefore
//!   leave at most one torn final line, which loading handles:
//!   [`Store::open_or_create`] keeps every record up to the first
//!   malformed line, reports what was salvaged ([`Store::salvage`]),
//!   and atomically rewrites the log to the good prefix so later
//!   appends never extend a corrupt tail.
//! * Opening a store whose `format_version` differs from this
//!   build's is an error, never a silent reinterpretation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use bichrome_comm::PublicCoin;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The pinned on-disk format version. Bump it whenever the meaning of
/// a stored line changes; stores written by other versions are
/// rejected at open time instead of being silently reinterpreted.
pub const FORMAT_VERSION: u64 = 1;

/// The magic string identifying a directory as a bichrome store.
const MAGIC: &str = "bichrome-store";

/// The trial-log filename inside a store directory.
const LOG_FILE: &str = "trials.jsonl";

/// The metadata filename inside a store directory.
const META_FILE: &str = "meta.json";

/// Stream tag under which trial identities are folded into content
/// hashes (disjoint from the runner's graph/partition/protocol seed
/// tags, which live in the `0x9A27_xxxx` range).
const KEY_TAG: u64 = 0x9A27_0057;

/// The canonical identity of one campaign trial — the unit of
/// deduplication. Two trials with equal keys are *the same
/// computation* (the executor derives every random stream from these
/// fields), so the store keeps exactly one record per key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrialKey {
    /// The protocol-axis label (registry key or explicit label).
    pub protocol: String,
    /// The graph spec's canonical `Display` string.
    pub graph: String,
    /// The partitioner-axis label: a `Partitioner` `Display` string,
    /// or the campaign's per-seed default label (the default
    /// partitioner is itself derived from `seed`, so the label plus
    /// the seed still pins the computation).
    pub partitioner: String,
    /// The trial seed.
    pub seed: u64,
}

impl TrialKey {
    /// The key's content address: every field folded into a 64-bit
    /// value through the tagged SplitMix64 subcoin chain (the same
    /// mixer the runner's seed derivation uses), starting from
    /// [`FORMAT_VERSION`]. Used to address records on disk; lookups
    /// always confirm full key equality, so a hash collision can
    /// never alias two different trials.
    pub fn content_hash(&self) -> u64 {
        let mut coin = PublicCoin::new(FORMAT_VERSION).subcoin(KEY_TAG);
        for field in [&self.protocol, &self.graph, &self.partitioner] {
            coin = fold_str(coin, field);
        }
        coin.subcoin(self.seed).seed()
    }
}

impl fmt::Display for TrialKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} / {} @ seed {}",
            self.protocol, self.graph, self.partitioner, self.seed
        )
    }
}

/// Folds a string into a [`PublicCoin`] chain: length first, then
/// each 8-byte little-endian chunk (zero-padded), so distinct strings
/// — including prefix pairs — follow distinct subcoin paths.
fn fold_str(coin: PublicCoin, s: &str) -> PublicCoin {
    let mut coin = coin.subcoin(s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        coin = coin.subcoin(u64::from_le_bytes(word));
    }
    coin
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem I/O failed; the first field names the path.
    Io(PathBuf, std::io::Error),
    /// The directory's `meta.json` declares a different format
    /// version than this build writes.
    VersionMismatch {
        /// The version found on disk.
        found: u64,
        /// The version this build supports ([`FORMAT_VERSION`]).
        expected: u64,
    },
    /// `meta.json` exists but is not a valid store header.
    BadMeta(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "store I/O on {}: {e}", path.display()),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "store format version {found} is not the supported version {expected} \
                 (refusing to reinterpret old data)"
            ),
            StoreError::BadMeta(msg) => write!(f, "store meta.json is invalid: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What a corrupt trial log was reduced to at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// Records kept (the good prefix of the log).
    pub kept: usize,
    /// Bytes discarded from the first malformed line onward.
    pub dropped_bytes: usize,
    /// The parse failure that ended the good prefix.
    pub error: String,
}

impl fmt::Display for Salvage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "salvaged {} record(s), dropped {} trailing byte(s): {}",
            self.kept, self.dropped_bytes, self.error
        )
    }
}

/// One stored trial: its identity plus the opaque record payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The trial's canonical identity.
    pub key: TrialKey,
    /// The record payload, exactly as the producer serialized it
    /// (one JSON object, no newlines).
    pub record_json: String,
}

/// A persistent trial store rooted at one directory. See the
/// [module docs](self) for the layout and durability model.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    entries: Vec<Entry>,
    index: HashMap<TrialKey, usize>,
    salvage: Option<Salvage>,
    /// The open append handle to `trials.jsonl`, created on first
    /// append and kept for the store's lifetime so a grid of many
    /// trials does not pay an open/close per record.
    log: Option<File>,
}

impl Store {
    /// Opens the store at `dir`, creating the directory and an empty
    /// store if nothing is there yet. Loads the whole trial log,
    /// truncating it (atomically) at the first malformed line — see
    /// [`Store::salvage`] for what, if anything, was dropped.
    pub fn open_or_create(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(dir.clone(), e))?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            check_meta(&meta_path)?;
        } else {
            let mut w = json::Writer::object();
            w.field_str("magic", MAGIC);
            w.field_u64("format_version", FORMAT_VERSION);
            atomic_write(&meta_path, &(w.finish() + "\n"))?;
        }
        let mut store = Store {
            dir,
            entries: Vec::new(),
            index: HashMap::new(),
            salvage: None,
            log: None,
        };
        store.load_log()?;
        Ok(store)
    }

    /// Opens an *existing* store at `dir`; unlike
    /// [`Store::open_or_create`] this fails if the directory is not
    /// already a store (the right behavior for read commands like
    /// `report` and `diff`, where a typo'd path should error, not
    /// materialize an empty store).
    pub fn open_existing(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        let meta_path = dir.join(META_FILE);
        if !meta_path.exists() {
            return Err(StoreError::BadMeta(format!(
                "{} is not a bichrome store (no {META_FILE})",
                dir.display()
            )));
        }
        Store::open_or_create(dir)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of stored trials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no trials.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries, in log (append) order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// The record payload stored for `key`, if any.
    pub fn get(&self, key: &TrialKey) -> Option<&str> {
        self.index
            .get(key)
            .map(|&i| self.entries[i].record_json.as_str())
    }

    /// What the last load dropped from a corrupt log (`None` when the
    /// log was fully intact).
    pub fn salvage(&self) -> Option<&Salvage> {
        self.salvage.as_ref()
    }

    /// Appends one record, flushing it to the log immediately. A key
    /// already present is overwritten in the index (last write wins)
    /// but producers are expected to append only missing keys.
    pub fn append(&mut self, key: TrialKey, record_json: String) -> Result<(), StoreError> {
        debug_assert!(
            !record_json.contains('\n'),
            "record payloads must be single-line JSON"
        );
        let path = self.dir.join(LOG_FILE);
        if self.log.is_none() {
            self.log = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| StoreError::Io(path.clone(), e))?,
            );
        }
        let file = self.log.as_mut().expect("append handle just ensured");
        let line = encode_line(&key, &record_json);
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| StoreError::Io(path, e))?;
        self.index.insert(key.clone(), self.entries.len());
        self.entries.push(Entry { key, record_json });
        Ok(())
    }

    /// Loads `trials.jsonl`, keeping the longest well-formed prefix.
    /// On corruption, rewrites the log to that prefix via temp file +
    /// rename and records a [`Salvage`] report.
    fn load_log(&mut self) -> Result<(), StoreError> {
        let path = self.dir.join(LOG_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(StoreError::Io(path, e)),
        };
        let mut good_bytes = 0usize;
        let mut bad: Option<String> = None;
        for line in text.split_inclusive('\n') {
            let complete = line.ends_with('\n');
            let body = line.trim_end_matches(['\n', '\r']);
            if body.is_empty() && complete {
                good_bytes += line.len();
                continue;
            }
            match decode_line(body) {
                Ok(entry) if complete => {
                    self.index.insert(entry.key.clone(), self.entries.len());
                    self.entries.push(entry);
                    good_bytes += line.len();
                }
                Ok(_) => {
                    bad = Some("final line is missing its newline (torn append)".to_string());
                    break;
                }
                Err(e) => {
                    bad = Some(e);
                    break;
                }
            }
        }
        if let Some(error) = bad {
            self.salvage = Some(Salvage {
                kept: self.entries.len(),
                dropped_bytes: text.len() - good_bytes,
                error,
            });
            // Repair: atomically replace the log with its good prefix
            // so future appends extend clean data.
            atomic_write(&path, &text[..good_bytes])?;
        }
        Ok(())
    }
}

/// The integrity hash of one log line: the key's content address
/// chained over the record payload bytes, so corruption of *either*
/// the identity fields or the record is detected at load (and the
/// line dropped as part of the salvage), never served as a cached
/// result.
fn line_hash(key: &TrialKey, record_json: &str) -> u64 {
    fold_str(PublicCoin::new(key.content_hash()), record_json).seed()
}

/// Serializes one log line (with trailing newline) for a record.
fn encode_line(key: &TrialKey, record_json: &str) -> String {
    let mut w = json::Writer::object();
    w.field_str("hash", &format!("{:016x}", line_hash(key, record_json)));
    w.field_str("protocol", &key.protocol);
    w.field_str("graph", &key.graph);
    w.field_str("partitioner", &key.partitioner);
    w.field_u64("seed", key.seed);
    w.field_raw("record", record_json);
    w.finish() + "\n"
}

/// Parses and integrity-checks one log line.
///
/// The seed and the record payload are extracted from the *raw* line
/// text (not re-serialized from the parsed tree) so they round-trip
/// byte-exactly — in particular a trial seed above 2⁵³ must not go
/// through the parser's `f64` numbers. Searching the raw text for the
/// unescaped `"seed":` / `,"record":` markers is unambiguous: inside
/// any JSON *string* value the quotes would be `\"`-escaped, so the
/// first unescaped occurrence is the line's own field (the payload,
/// which may legitimately contain a `"seed"` key of its own, comes
/// last in [`encode_line`]'s field order).
fn decode_line(line: &str) -> Result<Entry, String> {
    let v = json::Value::parse(line)?;
    let obj = v.as_object().ok_or("log line is not a JSON object")?;
    let get_str = |field: &str| {
        obj.get(field)
            .and_then(json::Value::as_str)
            .ok_or(format!("missing or non-string field {field:?}"))
    };
    let seed_at = line.find("\"seed\":").ok_or("missing field \"seed\"")? + "\"seed\":".len();
    let after_seed = &line[seed_at..];
    let digits_end = after_seed
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(after_seed.len());
    let seed_digits = &after_seed[..digits_end];
    let seed: u64 = seed_digits
        .parse()
        .map_err(|_| format!("seed {seed_digits:?} is not a u64"))?;
    let key = TrialKey {
        protocol: get_str("protocol")?.to_string(),
        graph: get_str("graph")?.to_string(),
        partitioner: get_str("partitioner")?.to_string(),
        seed,
    };
    if !obj.contains_key("record") {
        return Err("missing field \"record\"".to_string());
    }
    let record_at = line
        .find(",\"record\":")
        .ok_or("missing field \"record\"")?
        + ",\"record\":".len();
    let record_json = &line[record_at..line.len() - 1];
    let hash = get_str("hash")?;
    let expected = format!("{:016x}", line_hash(&key, record_json));
    if hash != expected {
        return Err(format!(
            "integrity hash {hash} does not match key {key} + record (expected {expected})"
        ));
    }
    Ok(Entry {
        key,
        record_json: record_json.to_string(),
    })
}

/// Verifies an existing `meta.json`.
fn check_meta(path: &Path) -> Result<(), StoreError> {
    let text = fs::read_to_string(path).map_err(|e| StoreError::Io(path.to_path_buf(), e))?;
    let v = json::Value::parse(&text).map_err(StoreError::BadMeta)?;
    let obj = v
        .as_object()
        .ok_or_else(|| StoreError::BadMeta("meta.json is not an object".to_string()))?;
    match obj.get("magic").and_then(json::Value::as_str) {
        Some(MAGIC) => {}
        other => {
            return Err(StoreError::BadMeta(format!(
                "magic is {other:?}, expected {MAGIC:?}"
            )))
        }
    }
    let found = obj
        .get("format_version")
        .and_then(json::Value::as_u64)
        .ok_or_else(|| StoreError::BadMeta("missing format_version".to_string()))?;
    if found != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found,
            expected: FORMAT_VERSION,
        });
    }
    Ok(())
}

/// Writes a file atomically: content goes to a sibling temp file
/// which is then renamed over the target, so readers (and crashes)
/// see either the old content or the new, never a torn write.
fn atomic_write(path: &Path, content: &str) -> Result<(), StoreError> {
    let err = |e| StoreError::Io(path.to_path_buf(), e);
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp).map_err(err)?;
        file.write_all(content.as_bytes())
            .and_then(|()| file.flush())
            .map_err(err)?;
    }
    fs::rename(&tmp, path).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory (removed on drop).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "bichrome-store-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(seed: u64) -> TrialKey {
        TrialKey {
            protocol: "edge/theorem2".to_string(),
            graph: "near-regular(n=24,d=4)".to_string(),
            partitioner: "alternating".to_string(),
            seed,
        }
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        assert!(store.is_empty());
        store
            .append(key(0), r#"{"bits":12,"ok":true}"#.to_string())
            .expect("append");
        store
            .append(key(1), r#"{"bits":9,"ok":true}"#.to_string())
            .expect("append");
        drop(store);

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 2);
        assert!(store.salvage().is_none());
        assert_eq!(store.get(&key(0)), Some(r#"{"bits":12,"ok":true}"#));
        assert_eq!(store.get(&key(1)), Some(r#"{"bits":9,"ok":true}"#));
        assert_eq!(store.get(&key(2)), None);
        let keys: Vec<u64> = store.iter().map(|e| e.key.seed).collect();
        assert_eq!(keys, vec![0, 1], "log order is append order");
    }

    #[test]
    fn content_hash_distinguishes_every_field() {
        let base = key(3);
        let mut variants = vec![base.clone()];
        variants.push(TrialKey {
            protocol: "vertex/theorem1".to_string(),
            ..base.clone()
        });
        variants.push(TrialKey {
            graph: "near-regular(n=24,d=5)".to_string(),
            ..base.clone()
        });
        variants.push(TrialKey {
            partitioner: "all-to-bob".to_string(),
            ..base.clone()
        });
        variants.push(TrialKey { seed: 4, ..base });
        let hashes: Vec<u64> = variants.iter().map(TrialKey::content_hash).collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{} vs {}", variants[i], variants[j]);
            }
        }
        // And a field boundary shift does not collide: moving a
        // character between adjacent fields changes the hash.
        let a = TrialKey {
            protocol: "ab".to_string(),
            graph: "c".to_string(),
            ..key(0)
        };
        let b = TrialKey {
            protocol: "a".to_string(),
            graph: "bc".to_string(),
            ..key(0)
        };
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn truncated_log_salvages_the_good_prefix() {
        let tmp = TempDir::new("salvage");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in 0..5 {
            store
                .append(key(seed), format!(r#"{{"seed":{seed}}}"#))
                .expect("append");
        }
        drop(store);

        // Tear the final line mid-write.
        let log = tmp.0.join(LOG_FILE);
        let text = fs::read_to_string(&log).expect("read log");
        fs::write(&log, &text[..text.len() - 17]).expect("truncate");

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 4, "good prefix survives");
        let salvage = store.salvage().expect("salvage reported");
        assert_eq!(salvage.kept, 4);
        assert!(salvage.dropped_bytes > 0);
        assert!(store.get(&key(3)).is_some());
        assert_eq!(store.get(&key(4)), None, "torn record is gone");

        // The repair rewrote the log: a fresh open is clean.
        let store = Store::open_or_create(&tmp.0).expect("after repair");
        assert_eq!(store.len(), 4);
        assert!(store.salvage().is_none(), "repaired log loads clean");
    }

    #[test]
    fn garbage_line_ends_the_prefix_and_is_dropped() {
        let tmp = TempDir::new("garbage");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store
            .append(key(0), r#"{"seed":0}"#.to_string())
            .expect("append");
        drop(store);
        let log = tmp.0.join(LOG_FILE);
        let mut text = fs::read_to_string(&log).expect("read");
        text.push_str("this is not json\n");
        fs::write(&log, text).expect("write");

        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert_eq!(store.len(), 1);
        assert!(store.salvage().is_some());
    }

    #[test]
    fn tampered_key_or_payload_is_rejected() {
        // Corruption of a *key* field and corruption of the *record
        // payload* must both fail the line's integrity hash — a
        // flipped measurement is as wrong as a flipped identity.
        for (from, to) in [
            ("\"seed\":0,", "\"seed\":9,"), // key field
            ("\"bits\":12", "\"bits\":13"), // payload field
        ] {
            let tmp = TempDir::new("tamper");
            let mut store = Store::open_or_create(&tmp.0).expect("create");
            store
                .append(key(0), r#"{"bits":12}"#.to_string())
                .expect("append");
            drop(store);
            let log = tmp.0.join(LOG_FILE);
            let text = fs::read_to_string(&log).expect("read").replace(from, to);
            fs::write(&log, text).expect("write");

            let store = Store::open_or_create(&tmp.0).expect("reopen");
            assert_eq!(store.len(), 0, "{from}: hash mismatch drops the line");
            let salvage = store.salvage().expect("salvage reported");
            assert!(
                salvage.error.contains("integrity hash"),
                "{}",
                salvage.error
            );
        }
    }

    #[test]
    fn version_mismatch_is_an_error_not_a_reinterpretation() {
        let tmp = TempDir::new("version");
        Store::open_or_create(&tmp.0).expect("create");
        let meta = tmp.0.join(META_FILE);
        fs::write(&meta, r#"{"magic":"bichrome-store","format_version":999}"#).expect("write meta");
        match Store::open_or_create(&tmp.0) {
            Err(StoreError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn open_existing_rejects_non_stores() {
        let tmp = TempDir::new("existing");
        assert!(matches!(
            Store::open_existing(&tmp.0),
            Err(StoreError::BadMeta(_))
        ));
        Store::open_or_create(&tmp.0).expect("create");
        assert!(Store::open_existing(&tmp.0).is_ok());
    }

    #[test]
    fn record_payloads_with_nested_structure_round_trip() {
        let tmp = TempDir::new("nested");
        let payload =
            r#"{"label":"gnp(n=30,p=0.15)","metrics":{"rct_remaining":0.5},"error":null}"#;
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        store.append(key(7), payload.to_string()).expect("append");
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        // The payload is extracted from the raw line text, so it
        // round-trips byte-exactly.
        assert_eq!(store.get(&key(7)), Some(payload));
    }

    #[test]
    fn full_range_seeds_round_trip_exactly() {
        // u64::MAX does not fit in the parser's f64 numbers; the raw
        // text path must preserve it (the content hash would fail
        // otherwise and the line would be dropped as corrupt).
        let tmp = TempDir::new("bigseed");
        let mut store = Store::open_or_create(&tmp.0).expect("create");
        for seed in [u64::MAX, u64::MAX - 1, 1 << 60] {
            store
                .append(key(seed), r#"{"ok":true}"#.to_string())
                .expect("append");
        }
        drop(store);
        let store = Store::open_or_create(&tmp.0).expect("reopen");
        assert!(store.salvage().is_none());
        for seed in [u64::MAX, u64::MAX - 1, 1 << 60] {
            assert_eq!(store.get(&key(seed)), Some(r#"{"ok":true}"#), "{seed}");
        }
    }
}
