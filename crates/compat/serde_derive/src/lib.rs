//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The offline `serde` stand-in in this workspace keeps the derive
//! *syntax* compiling; actual serialization is provided by
//! hand-written JSON code in `bichrome-runner` (see its `json`
//! module). These derives intentionally expand to nothing.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
