//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of `rand 0.8`
//! implemented from scratch: a deterministic xoshiro256** generator
//! behind the familiar [`Rng`] / [`SeedableRng`] / [`seq::SliceRandom`]
//! traits. Everything the `bichrome` crates call is here; nothing
//! else is. Streams are fully deterministic per seed, which is what
//! the two-party protocols rely on for shared public randomness.

#![forbid(unsafe_code)]

/// Concrete generators.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256**),
    /// seeded via SplitMix64 like `rand`'s `seed_from_u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface. Only `seed_from_u64` is provided; that is the
/// only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// A deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types samplable from the "standard" distribution (uniform over the
/// type's range; `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                start + v as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// A value uniform in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }

    /// A value from distribution `d`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, d: D) -> T
    where
        Self: Sized,
    {
        d.sample_one(self)
    }

    /// An infinite iterator of samples from `d`, consuming the rng.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        d: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            dist: d,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Distributions.
pub mod distributions {
    use super::{RngCore, StandardSample};

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample_one<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform over the full type).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample_one<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }

    /// Iterator over repeated samples; see `Rng::sample_iter`.
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) dist: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample_one(&mut self.rng))
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = r.gen_range(1..3u8);
            assert!((1..3).contains(&w));
            let x: u64 = r.gen_range(0..=5u64);
            assert!(x <= 5);
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn sample_iter_streams() {
        let r = StdRng::seed_from_u64(5);
        let xs: Vec<u32> = r
            .sample_iter(crate::distributions::Standard)
            .take(10)
            .collect();
        assert_eq!(xs.len(), 10);
    }
}
