//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate keeps
//! the workspace's property tests compiling and *meaningful*: the
//! same `proptest! { fn f(x in strategy) { .. } }` surface, executed
//! as a deterministic randomized loop (`cases` iterations, each case
//! seeded from its index). No shrinking, no persistence files — a
//! failing case panics with the ordinary assert message, and rerunning
//! reproduces it exactly because the seeds are fixed.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Per-invocation configuration. Only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG for one test case.
pub fn rng_for_case(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x5EED_0001_u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying with fresh samples.
    ///
    /// Panics after 10 000 consecutive rejections (the predicate is
    /// then rejecting essentially everything — a test bug).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The full-type-range strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform values over the whole of `T` (`[0, 1)` for floats).
pub fn any<T: rand::StandardSample>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A uniform choice between boxed alternatives; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`].
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Vectors whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares deterministic randomized tests from `x in strategy`
/// bindings, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for_case(__case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the ported tests already use.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a name the ported tests already use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a name the ported tests already use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($arm)),+])
    };
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::rng_for_case(0);
        for _ in 0..200 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let (a, b) = (0usize..5, 10u32..=12).sample(&mut rng);
            assert!(a < 5 && (10..=12).contains(&b));
            let xs = crate::collection::vec(0u8..4, 0..6).sample(&mut rng);
            assert!(xs.len() < 6 && xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn union_filter_map_flat_map() {
        let mut rng = crate::rng_for_case(1);
        let s = prop_oneof![Just(1u32), 5u32..7, (0u32..2).prop_map(|x| x + 100)];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(
                v == 1 || v == 5 || v == 6 || v == 100 || v == 101,
                "got {v}"
            );
        }
        let evens = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(evens.sample(&mut rng) % 2, 0);
        }
        let pairs = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..2, n..n + 1).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = pairs.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_working_tests(x in 0u64..50, ys in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
        }
    }
}
