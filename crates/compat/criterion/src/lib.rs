//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate keeps
//! the workspace's `benches/` targets compiling and useful: the same
//! `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_with_input` surface, backed by a simple wall-clock loop
//! (fixed warm-up, `sample_size` timed iterations, mean and min
//! printed per benchmark). No statistics machinery, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Duration,
    /// Minimum time per iteration of the last `iter` call.
    last_min: Duration,
}

impl Bencher {
    /// Times `f`: a few warm-up calls, then `sample_size` timed calls.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total / self.samples as u32;
        self.last_min = min;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark that receives a shared input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Runs a benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        println!(
            "{}/{:<28} mean {:>12?}   min {:>12?}   ({} samples)",
            self.name, id.label, b.last_mean, b.last_min, self.sample_size
        );
    }

    /// Ends the group (stdout flavor: prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            sample_size: 10,
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` in terms of one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        trivial(&mut c);
        c.bench_function("top", |b| b.iter(|| 2 * 2));
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_macro_expands() {
        benches();
    }
}
