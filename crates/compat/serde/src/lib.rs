//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate keeps
//! `use serde::{Deserialize, Serialize}` and the corresponding
//! `#[derive(...)]` attributes compiling without pulling in the real
//! dependency. The derives are no-ops; real JSON encoding/decoding
//! for report types lives in `bichrome_runner::json`, which is
//! hand-written and tested against round-trips.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the
/// offline stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the
/// offline stand-in).
pub trait Deserialize<'de> {}
