//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate
//! provides the shapes the workspace uses, implemented on
//! `std::thread::scope`:
//!
//! * `par_iter().map(..).collect()` — the input slice is cut into one
//!   contiguous chunk per available core, each chunk is mapped on its
//!   own OS thread, and results are stitched back in input order.
//! * [`scope`] / [`join`] — structured fork-join primitives.
//! * [`par_ranges`] / [`par_chunks`] / [`par_map_mut`] — *deterministic*
//!   chunked helpers: the chunk boundaries are a pure function of
//!   `(len, chunks)` (never of thread scheduling) and results merge in
//!   chunk-index order, so callers that fold the per-chunk results get
//!   bit-identical output at every thread count.
//!
//! Nesting is safe by construction: there is no global pool to
//! deadlock — every helper runs chunk 0 on the *calling* thread (a
//! worker entering a scope lends itself) and spawns plain scoped
//! threads for the rest, so a parallel region inside a parallel region
//! degrades to more (short-lived) threads, never to a stall.
//! Oversubscription is the caller's contract: pass a thread *budget*
//! (the runner's executor derives one from queue occupancy) rather
//! than unconditionally fanning out to all cores.
//!
//! Semantics match rayon for pure `Fn` closures: same output order,
//! real parallelism, panics propagate.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Number of worker threads available to parallel maps — rayon's
/// `current_num_threads`.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads used for parallel maps.
fn num_threads() -> usize {
    current_num_threads()
}

/// Runs `a` on the calling thread and `b` on a scoped thread,
/// returning both results — rayon's `join`, minus work stealing.
///
/// A panic in either closure propagates to the caller after both
/// finish or unwind.
///
/// # Example
///
/// ```
/// let (sum, product) = rayon::join(
///     || (1..=4).sum::<u32>(),
///     || (1..=4).product::<u32>(),
/// );
/// assert_eq!((sum, product), (10, 24));
/// ```
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// A fork-join scope handed to the closure of [`scope`].
///
/// Tasks spawned on it may borrow from the enclosing stack frame and
/// may themselves spawn further tasks (nested spawns reuse the same
/// scope — no pool, no deadlock).
#[derive(Debug, Clone, Copy)]
pub struct Scope<'s, 'env: 's> {
    inner: &'s std::thread::Scope<'s, 'env>,
}

impl<'s, 'env> Scope<'s, 'env> {
    /// Spawns a task on the scope. The task receives the scope itself,
    /// so it can spawn siblings — this is what makes workers entering
    /// a nested scope safe: they lend their own thread and add scoped
    /// threads, never waiting on a fixed-size pool.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s, 'env>) + Send + 's,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork-join scope: all tasks spawned on it complete before
/// `scope` returns — rayon's `scope` on `std::thread::scope`.
///
/// Panics from spawned tasks propagate after every task has been
/// joined.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let total = AtomicU32::new(0);
/// rayon::scope(|s| {
///     for x in 1..=4 {
///         let total = &total;
///         s.spawn(move |_| {
///             total.fetch_add(x, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 10);
/// ```
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'s> FnOnce(&Scope<'s, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// The `i`-th of `chunks` balanced contiguous ranges of `0..len` — a
/// pure function of its arguments, so chunked parallel passes are
/// deterministic at every thread count.
///
/// The first `len % chunks` ranges are one element longer.
///
/// # Panics
///
/// Panics if `chunks == 0` or `i >= chunks`.
pub fn chunk_range(len: usize, chunks: usize, i: usize) -> Range<usize> {
    assert!(chunks > 0 && i < chunks, "chunk {i} of {chunks}");
    let base = len / chunks;
    let rem = len % chunks;
    let start = i * base + i.min(rem);
    let end = start + base + usize::from(i < rem);
    start..end
}

/// Maps `chunks` deterministic ranges of `0..len` through `f` in
/// parallel — chunk 0 on the calling thread, the rest on scoped
/// threads — and returns the results in chunk-index order.
///
/// Chunk boundaries come from [`chunk_range`], so the returned vector
/// is identical whatever the scheduling; `chunks` is clamped to
/// `1..=len` (an empty input yields no chunks).
pub fn par_ranges<R, F>(len: usize, chunks: usize, f: F) -> Vec<R>
where
    F: Fn(usize, Range<usize>) -> R + Sync,
    R: Send,
{
    if len == 0 {
        return Vec::new();
    }
    let k = chunks.clamp(1, len);
    if k == 1 {
        return vec![f(0, 0..len)];
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..k)
            .map(|ci| s.spawn(move || f(ci, chunk_range(len, k, ci))))
            .collect();
        let mut out = Vec::with_capacity(k);
        out.push(f(0, chunk_range(len, k, 0)));
        for h in handles {
            out.push(match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            });
        }
        out
    })
}

/// Deterministic chunked map over a slice: `f(chunk_index, chunk)` for
/// each of `chunks` balanced contiguous chunks, results in chunk-index
/// order (see [`par_ranges`] for the determinism contract).
pub fn par_chunks<T, R, F>(items: &[T], chunks: usize, f: F) -> Vec<R>
where
    T: Sync,
    F: Fn(usize, &[T]) -> R + Sync,
    R: Send,
{
    par_ranges(items.len(), chunks, |ci, range| f(ci, &items[range]))
}

/// Deterministic chunked map over a *mutable* slice: each chunk gets
/// exclusive access to its elements, chunk 0 runs on the calling
/// thread, and results return in chunk-index order.
pub fn par_map_mut<T, R, F>(items: &mut [T], chunks: usize, f: F) -> Vec<R>
where
    T: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
    R: Send,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let k = chunks.clamp(1, len);
    if k == 1 {
        return vec![f(0, items)];
    }
    let mut parts: Vec<&mut [T]> = Vec::with_capacity(k);
    let mut rest = items;
    for ci in 0..k {
        let take = chunk_range(len, k, ci).len();
        let (head, tail) = rest.split_at_mut(take);
        parts.push(head);
        rest = tail;
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut first = None;
        let mut handles = Vec::with_capacity(k - 1);
        for (ci, part) in parts.into_iter().enumerate() {
            if ci == 0 {
                first = Some(part);
            } else {
                handles.push(s.spawn(move || f(ci, part)));
            }
        }
        let mut out = Vec::with_capacity(k);
        out.push(f(0, first.expect("chunk 0 exists")));
        for h in handles {
            out.push(match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            });
        }
        out
    })
}

/// Conversion of `&collection` into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;

    /// A parallel iterator over references to the elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Runs the map on a scoped thread pool and collects results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let workers = num_threads().min(n);
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| s.spawn(move || items.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        per_chunk.drain(..).flatten().collect()
    }
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunk_ranges_are_balanced_and_exhaustive() {
        for len in [0usize, 1, 2, 7, 64, 100, 101] {
            for chunks in 1..=9usize {
                let mut next = 0;
                for i in 0..chunks {
                    let r = chunk_range(len, chunks, i);
                    assert_eq!(r.start, next, "contiguous at len={len} k={chunks}");
                    assert!(r.len() <= len / chunks + 1);
                    next = r.end;
                }
                assert_eq!(next, len, "covers 0..len");
            }
        }
    }

    #[test]
    fn par_ranges_results_in_chunk_order() {
        for chunks in [1usize, 2, 3, 8, 100] {
            let got = par_ranges(10, chunks, |ci, r| (ci, r.start, r.end));
            assert_eq!(got.len(), chunks.min(10));
            for (i, &(ci, start, end)) in got.iter().enumerate() {
                assert_eq!(ci, i);
                assert_eq!(start..end, chunk_range(10, chunks.min(10), i));
            }
        }
        assert!(par_ranges(0, 4, |_, _| ()).is_empty());
    }

    #[test]
    fn par_chunks_matches_serial_fold() {
        let xs: Vec<u64> = (0..1000).collect();
        let serial: u64 = xs.iter().sum();
        for budget in [1usize, 2, 4, 8] {
            let sums = par_chunks(&xs, budget, |_, chunk| chunk.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), serial, "budget {budget}");
        }
    }

    #[test]
    fn par_map_mut_gives_exclusive_chunks() {
        for budget in [1usize, 3, 8] {
            let mut xs: Vec<u64> = (0..100).collect();
            let counts = par_map_mut(&mut xs, budget, |ci, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1 + ci as u64;
                }
                chunk.len()
            });
            assert_eq!(counts.iter().sum::<usize>(), 100);
            // Element i was bumped by 1 + its chunk index — chunk
            // assignment is the deterministic chunk_range partition.
            let k = budget.clamp(1, 100);
            for (i, &x) in xs.iter().enumerate() {
                let ci = (0..k)
                    .find(|&c| chunk_range(100, k, c).contains(&i))
                    .unwrap();
                assert_eq!(x, i as u64 + 1 + ci as u64);
            }
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                let hits = &hits;
                s.spawn(move |inner| {
                    // A worker inside a scope opens another parallel
                    // region: nested spawns reuse the same scope.
                    inner.spawn(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    let part = par_ranges(8, 2, |_, r| r.len());
                    hits.fetch_add(part.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 + 4 * 8);
    }

    #[test]
    fn join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| super::join(|| 1, || panic!("right side")));
        assert!(caught.is_err());
        let (a, b) = super::join(|| 2, || 3);
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn preserves_input_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let xs: Vec<u32> = (0..256).collect();
        let _: Vec<()> = xs
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        // With >1 core this runs on >1 thread; with 1 core, 1 is fine.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let used = seen.lock().unwrap().len();
        assert!(used >= 1 && used <= cores.max(1));
        if cores > 1 {
            assert!(used > 1, "expected parallel execution, used {used} threads");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let xs: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = xs
            .par_iter()
            .map(|&x| if x == 33 { panic!("boom") } else { x })
            .collect();
    }
}
