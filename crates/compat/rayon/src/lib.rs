//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate
//! provides the `par_iter().map(..).collect()` shape the workspace
//! uses, implemented on `std::thread::scope`: the input slice is cut
//! into one contiguous chunk per available core, each chunk is mapped
//! on its own OS thread, and results are stitched back in input
//! order. Semantics match rayon for pure `Fn` closures: same output
//! order, real parallelism, panics propagate.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel maps.
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion of `&collection` into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;

    /// A parallel iterator over references to the elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting a `collect`.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Runs the map on a scoped thread pool and collects results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let workers = num_threads().min(n);
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| s.spawn(move || items.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        per_chunk.drain(..).flatten().collect()
    }
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let xs: Vec<u32> = (0..256).collect();
        let _: Vec<()> = xs
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        // With >1 core this runs on >1 thread; with 1 core, 1 is fine.
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let used = seen.lock().unwrap().len();
        assert!(used >= 1 && used <= cores.max(1));
        if cores > 1 {
            assert!(used > 1, "expected parallel execution, used {used} threads");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let xs: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = xs
            .par_iter()
            .map(|&x| if x == 33 { panic!("boom") } else { x })
            .collect();
    }
}
