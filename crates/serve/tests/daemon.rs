//! End-to-end daemon properties: cross-job instance dedup, warm
//! re-submission, cancellation, graceful shutdown, and crash-resume
//! convergence.

use bichrome_serve::{Addr, Client, Daemon, DaemonConfig, Format, Listener};
use bichrome_store::{Store, StoreConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "bichrome-daemon-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(workers: usize) -> DaemonConfig {
    DaemonConfig {
        workers,
        ..DaemonConfig::default()
    }
}

/// One overlapping-grid campaign per client: same graphs × seeds,
/// distinct protocol axis.
fn overlap_campaign(protocol: &str) -> String {
    format!(
        r#"
        [campaign]
        protocols = ["{protocol}"]
        graphs    = ["near-regular(n=30,d=4)", "gnp(n=30,p=0.15)"]
        seeds     = "0..3"
        "#
    )
}

/// The tentpole concurrency property: four clients submit
/// overlapping grids concurrently, and the daemon-wide cache builds
/// each distinct `(spec, seed)` graph exactly once — 6 builds for 24
/// requests — because all jobs multiplex onto one executor and one
/// cache. A fifth, repeated submission then computes 0 trials.
#[test]
fn concurrent_overlapping_jobs_build_each_graph_exactly_once() {
    let tmp = TempDir::new("overlap");
    let daemon = Daemon::start(tmp.0.join("store"), config(4)).expect("start");

    let protocols = [
        "vertex/theorem1",
        "edge/theorem2",
        "baseline/send-everything",
        "baseline/greedy-binary-search",
    ];
    std::thread::scope(|scope| {
        for protocol in protocols {
            let daemon = &daemon;
            scope.spawn(move || {
                let job = daemon.submit(&overlap_campaign(protocol)).expect("submit");
                let (_ack, rx) = daemon.watch(job).expect("watch");
                let events: Vec<String> = rx.iter().collect();
                let end = events.last().expect("end event");
                assert!(end.contains("\"state\":\"done\""), "{protocol}: {end}");
                assert!(
                    end.contains("computed 6 trials (0 skipped via store)"),
                    "{protocol}: {end}"
                );
                // 6 pending trials → at most 6 trial events (those
                // committed before the watch registered are not
                // replayed) + the end event.
                assert!((1..=7).contains(&events.len()), "{protocol}: {events:?}");
            });
        }
    });

    // 4 jobs × 6 trials requested a graph each; 2 specs × 3 seeds
    // distinct graphs were actually built — once each, across jobs.
    let cs = daemon.cache_stats();
    assert_eq!(cs.graphs_requested, 24);
    assert_eq!(cs.graphs_built, 6, "each distinct graph built exactly once");
    assert_eq!(cs.partitions_requested, 24);
    assert_eq!(
        cs.partitions_built, 6,
        "per-seed default partition shared across jobs"
    );

    // Warm re-submission: everything is in the store now.
    let job = daemon
        .submit(&overlap_campaign("vertex/theorem1"))
        .expect("warm submit");
    let (_ack, rx) = daemon.watch(job).expect("watch");
    let end: Vec<String> = rx.iter().collect();
    assert_eq!(end.len(), 1, "no trial events on a warm job");
    assert!(
        end[0].contains("computed 0 trials (6 skipped via store)"),
        "{end:?}"
    );
    assert_eq!(cs.graphs_built, daemon.cache_stats().graphs_built);

    // Per-job accounting survives in status and the jobs listing.
    let status = daemon.status(job).expect("status");
    assert!(status.contains("\"state\":\"done\""), "{status}");
    assert!(status.contains("\"skipped\":6"), "{status}");
    let jobs = daemon.jobs_line();
    assert_eq!(jobs.matches("\"state\":\"done\"").count(), 5, "{jobs}");

    daemon.shutdown().expect("shutdown");
}

/// Real sockets: two clients on a Unix socket drive the same daemon,
/// the second resubmission is warm, and reports/diffs come back over
/// the wire.
#[test]
fn socket_clients_share_the_daemon() {
    let tmp = TempDir::new("socket");
    let daemon = Daemon::start(tmp.0.join("store"), config(2)).expect("start");
    let addr = Addr::Unix(tmp.0.join("daemon.sock"));
    let listener = Listener::bind(&addr).expect("bind");
    let server = {
        let daemon = daemon.clone();
        std::thread::spawn(move || daemon.serve(listener))
    };

    let campaign = r#"
        [campaign]
        protocols = ["edge/theorem2", "baseline/send-everything"]
        graphs    = ["gnp(n=24,p=0.2)"]
        seeds     = "0..4"
        baseline  = "baseline/send-everything"
    "#;
    let client_a = Client::new(addr.clone());
    let client_b = Client::new(addr.clone());
    assert!(client_a.ping(), "daemon should answer pings");

    let job_a = client_a.submit(campaign).expect("submit a");
    let mut trial_events = 0u64;
    let end = client_a
        .watch(job_a, |_event| trial_events += 1)
        .expect("watch a");
    let end_obj = end.as_object().expect("end object");
    assert_eq!(end_obj["state"].as_str(), Some("done"));
    assert_eq!(
        end_obj["summary"].as_str(),
        Some("computed 8 trials (0 skipped via store)")
    );
    assert!(trial_events <= 8, "2 protocols × 4 seeds trial events");

    // Client B resubmits the identical grid: fully warm.
    let job_b = client_b.submit(campaign).expect("submit b");
    let end = client_b.watch(job_b, |_| {}).expect("watch b");
    assert_eq!(
        end.as_object().expect("obj")["summary"].as_str(),
        Some("computed 0 trials (8 skipped via store)")
    );

    // Reports and diffs round-trip the wire.
    let report = client_b.report(Some(job_b), Format::Text).expect("report");
    assert!(
        report.contains("computed 0 trials (8 skipped via store)"),
        "{report}"
    );
    let csv = client_b.report(None, Format::Csv).expect("store csv");
    assert_eq!(csv.lines().count(), 1 + 2, "header + one row per cell");
    let diff = client_a.diff(job_a, job_b).expect("diff");
    assert!(diff.contains("2 shared cell(s)"), "{diff}");
    assert!(
        diff.contains("1.00x"),
        "identical jobs diff at 1.00x: {diff}"
    );

    let stats = client_a.stats().expect("stats");
    let stats = stats.as_object().expect("obj");
    assert_eq!(stats["records"].as_u64(), Some(8));
    assert_eq!(stats["jobs"].as_u64(), Some(2));

    // The `metrics` verb returns the process-wide obs registry: the
    // two submits above are counted under their verb label, and the
    // store saw at least this test's eight appends.
    let metrics = client_a.metrics().expect("metrics");
    let counters = metrics.as_object().expect("obj")["counters"]
        .as_object()
        .expect("counters object")
        .clone();
    let submits = counters["bichrome_daemon_requests_total{verb=\"submit\"}"]
        .as_u64()
        .expect("submit counter");
    assert!(submits >= 2, "two submits counted, saw {submits}");
    let appends = counters["bichrome_store_appends_total"]
        .as_u64()
        .expect("append counter");
    assert!(appends >= 8, "eight store appends counted, saw {appends}");

    client_a.shutdown().expect("shutdown");
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    assert!(
        !client_b.ping(),
        "daemon must stop answering after shutdown"
    );
}

/// Cancellation is cooperative: queued tasks drain without running,
/// completed trials stay committed, and the watcher gets a
/// `cancelled` end event.
#[test]
fn cancel_stops_a_running_job_and_keeps_its_progress() {
    let tmp = TempDir::new("cancel");
    let daemon = Daemon::start(tmp.0.join("store"), config(2)).expect("start");
    let job = daemon
        .submit(
            r#"
            [campaign]
            protocols = ["vertex/theorem1"]
            graphs    = ["near-regular(n=1024,d=6)"]
            seeds     = "0..24"
            "#,
        )
        .expect("submit");
    let (_ack, rx) = daemon.watch(job).expect("watch");
    // Cancel as soon as the first trial lands; the 20+ queued tasks
    // behind it must drain as no-ops.
    let mut events = Vec::new();
    for event in rx {
        if events.is_empty() {
            daemon.cancel(job).expect("cancel");
        }
        events.push(event);
    }
    let end = events.last().expect("end event");
    assert!(end.contains("\"state\":\"cancelled\""), "{end}");
    let computed = events.len() as u64 - 1;
    assert!(
        (1..24).contains(&computed),
        "cancel must land mid-job (computed {computed})"
    );

    // What was computed before the cancel is durable: a re-submit
    // skips exactly that many trials.
    let resubmit = daemon
        .submit(
            r#"
            [campaign]
            protocols = ["vertex/theorem1"]
            graphs    = ["near-regular(n=1024,d=6)"]
            seeds     = "0..1"
            "#,
        )
        .expect("submit warm probe");
    let status = daemon.status(resubmit).expect("status");
    // Seed 0 ran first (FIFO queue), so this 1-trial grid is warm.
    let (_ack, rx) = daemon.watch(resubmit).expect("watch");
    let _ = rx.iter().count();
    let status_done = daemon.status(resubmit).expect("status");
    assert!(
        status.contains("\"ok\":true") && status_done.contains("\"skipped\":1"),
        "{status_done}"
    );
    daemon.shutdown().expect("shutdown");
}

/// Graceful shutdown drains in-flight jobs to completion, then
/// checkpoints (flush + roll + atomic meta): nothing computed is
/// lost, and new submissions are refused while draining.
#[test]
fn shutdown_drains_inflight_jobs_then_checkpoints() {
    let tmp = TempDir::new("drain");
    let store_dir = tmp.0.join("store");
    let daemon = Daemon::start(&store_dir, config(2)).expect("start");
    let job = daemon
        .submit(
            r#"
            [campaign]
            protocols = ["edge/theorem2", "baseline/send-everything"]
            graphs    = ["gnp(n=40,p=0.1)"]
            seeds     = "0..6"
            "#,
        )
        .expect("submit");
    daemon.shutdown().expect("shutdown drains");
    let status = daemon.status(job).expect("status");
    assert!(
        status.contains("\"state\":\"done\"") && status.contains("\"computed\":12"),
        "shutdown must finish the in-flight job: {status}"
    );
    assert!(
        daemon.submit("[campaign]\n").is_err(),
        "submissions refused once draining"
    );

    // The checkpointed store reopens whole: every record present, no
    // salvage, and the meta matches (open_existing validates it).
    let store = Store::open_existing(&store_dir).expect("reopen");
    assert_eq!(store.len(), 12);
    assert!(store.salvage().is_none(), "checkpointed store is clean");
}

/// Kill-at-a-random-point resume: a daemon's store torn mid-frame at
/// arbitrary byte offsets salvages what was durable, and a fresh
/// daemon re-submitted the same campaign converges to a report
/// bit-identical to an uninterrupted run.
#[test]
fn torn_store_resumes_to_a_bit_identical_report() {
    let campaign = r#"
        [campaign]
        protocols = ["edge/theorem2", "baseline/send-everything"]
        graphs    = ["gnp(n=24,p=0.2)"]
        seeds     = "0..6"
    "#;
    let fresh = bichrome_runner::CampaignFile::parse(campaign)
        .expect("parse")
        .to_campaign(None)
        .run()
        .to_json();
    let total = 2 * 6u64;

    for cut in [0.35, 0.65, 0.95] {
        let tmp = TempDir::new("tear");
        let store_dir = tmp.0.join("store");
        {
            let daemon = Daemon::start(&store_dir, config(2)).expect("start");
            let job = daemon.submit(campaign).expect("submit");
            let (_ack, rx) = daemon.watch(job).expect("watch");
            let _ = rx.iter().count();
            daemon.shutdown().expect("shutdown");
        }

        // The "kill": tear the newest segment at an arbitrary point.
        let (salvaged, torn) = {
            let store = Store::open_existing(&store_dir).expect("open for tear");
            let seg = store
                .segments()
                .expect("segments")
                .last()
                .cloned()
                .expect("at least one segment");
            drop(store);
            let bytes = std::fs::read(&seg).expect("read segment");
            let keep = (bytes.len() as f64 * cut) as usize;
            std::fs::write(&seg, &bytes[..keep]).expect("tear");
            let store = Store::open_existing(&store_dir).expect("salvaging open");
            (store.len() as u64, store.salvage().is_some())
        };
        assert!(torn, "cut={cut}: the tear must be detected");
        assert!(salvaged < total, "cut={cut}: something was lost");

        // Resume on a brand-new daemon: recompute only the lost tail.
        let daemon = Daemon::start(&store_dir, config(2)).expect("restart");
        let job = daemon.submit(campaign).expect("resubmit");
        let (_ack, rx) = daemon.watch(job).expect("watch");
        let _ = rx.iter().count();
        let status = daemon.status(job).expect("status");
        assert!(
            status.contains(&format!("\"computed\":{}", total - salvaged))
                && status.contains(&format!("\"skipped\":{salvaged}")),
            "cut={cut}: recompute exactly the destroyed records: {status}"
        );
        let report = daemon.report(Some(job), Format::Json).expect("job report");
        assert_eq!(report, fresh, "cut={cut}: resume must be bit-identical");
        daemon.shutdown().expect("shutdown");
    }
}

/// The daemon honors store batching config end to end: many small
/// appends stay buffered between group flushes, and shutdown leaves
/// nothing behind.
#[test]
fn batched_writes_survive_shutdown() {
    let tmp = TempDir::new("batch");
    let store_dir = tmp.0.join("store");
    let daemon = Daemon::start(
        &store_dir,
        DaemonConfig {
            workers: 1,
            store: StoreConfig {
                flush_every: 1000, // far more than the job writes
                ..StoreConfig::default()
            },
            ..DaemonConfig::default()
        },
    )
    .expect("start");
    let job = daemon
        .submit(
            r#"
            [campaign]
            protocols = ["baseline/send-everything"]
            graphs    = ["path(n=16)"]
            seeds     = "0..5"
            "#,
        )
        .expect("submit");
    let (_ack, rx) = daemon.watch(job).expect("watch");
    let _ = rx.iter().count();
    daemon.shutdown().expect("shutdown");
    let store = Store::open_existing(&store_dir).expect("reopen");
    assert_eq!(store.len(), 5, "buffered appends flushed by shutdown");
    assert!(store.salvage().is_none());
}
