//! Remote-worker properties, end to end over the wire: workers drain
//! the queue through `lease`/`complete` and the daemon's report is
//! bit-identical to an in-process run; a worker dying mid-trial loses
//! nothing — its lease expires, the trial re-queues, and the stale
//! completion is discarded.

use bichrome_runner::{compute_trial, CampaignFile, FaultPlan, InstanceCache, TransportKind};
use bichrome_serve::{Addr, Client, Daemon, DaemonConfig, Format, LeaseGrant, Listener};
use bichrome_store::TrialKey;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique scratch directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "bichrome-workers-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A scheduler-only daemon (no local pool) serving a Unix socket.
fn pure_scheduler(
    tmp: &TempDir,
    lease_timeout: Duration,
) -> (std::sync::Arc<Daemon>, Addr, std::thread::JoinHandle<()>) {
    let daemon = Daemon::start(
        tmp.0.join("store"),
        DaemonConfig {
            local_pool: false,
            lease_timeout,
            ..DaemonConfig::default()
        },
    )
    .expect("start");
    let addr = Addr::Unix(tmp.0.join("daemon.sock"));
    let listener = Listener::bind(&addr).expect("bind");
    let server = {
        let daemon = daemon.clone();
        std::thread::spawn(move || daemon.serve(listener).expect("serve"))
    };
    (daemon, addr, server)
}

const CAMPAIGN: &str = r#"
    [campaign]
    protocols = ["edge/theorem2", "baseline/send-everything"]
    graphs    = ["near-regular(n=24,d=4)"]
    seeds     = "0..3"
    transport = "tcp"
"#;

/// What `bichrome work` does, minus the process boundary: pull a
/// lease, recompute it from the key alone, send the record back.
fn work_one(client: &Client, cache: &InstanceCache) -> Option<LeaseGrant> {
    match client.lease().expect("lease") {
        LeaseGrant::Trial(t) => {
            let key = TrialKey {
                protocol: t.protocol.clone(),
                graph: t.graph.clone(),
                partitioner: t.partitioner.clone(),
                seed: t.seed,
            };
            let kind: TransportKind = t.transport.parse().expect("transport name");
            let fault: FaultPlan = t.fault.parse().expect("fault spec");
            let record = compute_trial(&key, kind, &fault, cache).expect("descriptor resolves");
            assert!(
                client
                    .complete(t.lease, &record.to_json())
                    .expect("complete"),
                "fresh lease must be accepted"
            );
            None
        }
        grant => Some(grant),
    }
}

/// Keeps working until the watched job ends; returns trials computed.
fn work_until_done(addr: &Addr, job: u64) -> u64 {
    let client = Client::new(addr.clone());
    let cache = InstanceCache::new();
    let watcher = {
        let client = client.clone();
        std::thread::spawn(move || client.watch(job, |_| {}).expect("watch"))
    };
    let mut computed = 0;
    while !watcher.is_finished() {
        match work_one(&client, &cache) {
            None => computed += 1,
            Some(LeaseGrant::Stop) => break,
            Some(LeaseGrant::Idle) => std::thread::sleep(Duration::from_millis(5)),
            Some(LeaseGrant::Trial(_)) => unreachable!(),
        }
    }
    let end = watcher.join().expect("watcher");
    assert_eq!(
        end.as_object().expect("object")["state"].as_str(),
        Some("done"),
        "{end:?}"
    );
    computed
}

/// The tentpole acceptance property: a scheduler-only daemon plus two
/// remote workers produce, over the wire, the exact report an
/// in-process `Campaign::run` computes — and the workers did all the
/// computing (the daemon has zero local workers).
#[test]
fn remote_workers_drain_the_queue_and_the_report_is_bit_identical() {
    let tmp = TempDir::new("drain");
    let (_daemon, addr, server) = pure_scheduler(&tmp, Duration::from_secs(30));
    let client = Client::new(addr.clone());
    let job = client.submit(CAMPAIGN).expect("submit");

    let total: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || work_until_done(&addr, job))
            })
            .collect();
        workers.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    assert_eq!(total, 6, "the two workers computed every trial");

    let remote_csv = client.report(Some(job), Format::Csv).expect("report");
    let local_csv = CampaignFile::parse(CAMPAIGN)
        .expect("toml")
        .to_campaign(None)
        .run()
        .to_csv();
    assert_eq!(
        remote_csv, local_csv,
        "wire execution must be bit-identical"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("server");
}

/// Satellite robustness property: a worker that leases a trial and
/// dies never stalls the campaign. The reaper expires the lease and
/// re-queues the trial, a live worker recomputes it bit-identically,
/// and the dead worker's eventual stale `complete` is discarded
/// without double-counting.
#[test]
fn an_abandoned_lease_expires_requeues_and_the_late_complete_is_discarded() {
    let tmp = TempDir::new("expiry");
    // 400ms: long enough that no *live* worker's lease ever expires
    // mid-compute (trials here take microseconds), short enough that
    // the abandoned lease turns over quickly.
    let (daemon, addr, server) = pure_scheduler(&tmp, Duration::from_millis(400));
    let client = Client::new(addr.clone());
    let job = client.submit(CAMPAIGN).expect("submit");

    // The doomed worker takes one trial and "crashes": it holds the
    // token but never completes.
    let stale = match client.lease().expect("lease") {
        LeaseGrant::Trial(t) => t,
        other => panic!("expected a trial, got {other:?}"),
    };

    // A healthy worker drains everything — including, once the
    // lease expires and the reaper re-queues it, the trial the dead
    // worker abandoned.
    let computed = work_until_done(&addr, job);
    assert_eq!(computed, 6, "the live worker computed all six trials");

    // The dead worker limps back with its answer: politely discarded.
    let cache = InstanceCache::new();
    let key = TrialKey {
        protocol: stale.protocol.clone(),
        graph: stale.graph.clone(),
        partitioner: stale.partitioner.clone(),
        seed: stale.seed,
    };
    let record =
        compute_trial(&key, TransportKind::Tcp, &FaultPlan::new(), &cache).expect("recompute");
    assert!(
        !client
            .complete(stale.lease, &record.to_json())
            .expect("stale complete"),
        "an expired lease's completion must be rejected"
    );

    // Accounting: exactly one expiry, no double-counted trials.
    let stats = client.stats().expect("stats");
    let stats = stats.as_object().expect("object");
    assert_eq!(stats["leases_expired"].as_u64(), Some(1), "{stats:?}");
    assert_eq!(stats["leases_completed"].as_u64(), Some(6), "{stats:?}");
    let status = daemon.status(job).expect("status");
    assert!(
        status.contains("\"computed\":6"),
        "no double count: {status}"
    );

    // And the report is still bit-identical to an in-process run.
    let remote_csv = client.report(Some(job), Format::Csv).expect("report");
    let local_csv = CampaignFile::parse(CAMPAIGN)
        .expect("toml")
        .to_campaign(None)
        .run()
        .to_csv();
    assert_eq!(remote_csv, local_csv, "expiry must not change results");

    client.shutdown().expect("shutdown");
    server.join().expect("server");
}

/// A record that does not decode, or that answers the wrong trial,
/// sends the trial back to the queue instead of poisoning the job.
#[test]
fn malformed_or_mismatched_records_requeue_the_trial() {
    let tmp = TempDir::new("badrecord");
    let (_daemon, addr, server) = pure_scheduler(&tmp, Duration::from_secs(30));
    let client = Client::new(addr.clone());
    let job = client.submit(CAMPAIGN).expect("submit");

    // Garbage payload: rejected, trial re-queued.
    let t = match client.lease().expect("lease") {
        LeaseGrant::Trial(t) => t,
        other => panic!("expected a trial, got {other:?}"),
    };
    let err = client
        .complete(t.lease, "this is not json")
        .expect_err("garbage record");
    assert!(err.to_string().contains("re-queued"), "{err}");
    assert!(
        !err.is_retryable(),
        "a rejected record is the worker's fault"
    );

    // Right shape, wrong trial: also rejected and re-queued.
    let t2 = match client.lease().expect("lease") {
        LeaseGrant::Trial(t2) => t2,
        other => panic!("expected a trial, got {other:?}"),
    };
    let cache = InstanceCache::new();
    let wrong_key = TrialKey {
        protocol: t2.protocol.clone(),
        graph: t2.graph.clone(),
        partitioner: t2.partitioner.clone(),
        seed: t2.seed.wrapping_add(1_000_000),
    };
    let wrong = compute_trial(&wrong_key, TransportKind::InProc, &FaultPlan::new(), &cache)
        .expect("compute");
    let err = client
        .complete(t2.lease, &wrong.to_json())
        .expect_err("mismatched record");
    assert!(err.to_string().contains("re-queued"), "{err}");

    // Both trials are back in the queue: an honest worker finishes.
    assert_eq!(work_until_done(&addr, job), 6);
    client.shutdown().expect("shutdown");
    server.join().expect("server");
}

/// A campaign that declares chaos ships its fault plan inside every
/// lease, the worker re-injects it, and — because every declared
/// fault is recovered below the meter — the report still matches a
/// fault-free in-process run byte for byte. The worker's reconnect
/// telemetry, piggybacked on the lease request, lands in `stats`.
#[test]
fn faulted_campaigns_ship_the_chaos_plan_with_every_lease() {
    const FAULTED: &str = r#"
        [campaign]
        protocols = ["edge/theorem2", "baseline/send-everything"]
        graphs    = ["near-regular(n=24,d=4)"]
        seeds     = "0..3"
        transport = "tcp"
        fault     = "sever@2,corrupt@1"
    "#;
    let tmp = TempDir::new("chaos");
    let (_daemon, addr, server) = pure_scheduler(&tmp, Duration::from_secs(30));
    let client = Client::new(addr.clone());
    let job = client.submit(FAULTED).expect("submit");

    // This worker claims it survived two outages getting here; the
    // telemetry rides the lease request itself.
    let t = match client.lease_reporting(2, 5_000_000).expect("lease") {
        LeaseGrant::Trial(t) => t,
        other => panic!("expected a trial, got {other:?}"),
    };
    assert_eq!(
        t.fault, "sever@2,corrupt@1",
        "the lease must carry the campaign's fault plan"
    );
    let key = TrialKey {
        protocol: t.protocol.clone(),
        graph: t.graph.clone(),
        partitioner: t.partitioner.clone(),
        seed: t.seed,
    };
    let kind: TransportKind = t.transport.parse().expect("transport name");
    let fault: FaultPlan = t.fault.parse().expect("fault spec");
    let cache = InstanceCache::new();
    let record = compute_trial(&key, kind, &fault, &cache).expect("compute under faults");
    assert!(client
        .complete(t.lease, &record.to_json())
        .expect("complete"));

    // `work_one` drains the rest, re-injecting each lease's plan.
    assert_eq!(work_until_done(&addr, job), 5);

    // Chaos recovered below the meter: byte-identical to a fault-free
    // in-process run of the same grid.
    let remote_csv = client.report(Some(job), Format::Csv).expect("report");
    let local_csv = CampaignFile::parse(CAMPAIGN)
        .expect("toml")
        .to_campaign(None)
        .run()
        .to_csv();
    assert_eq!(remote_csv, local_csv, "faults must not change results");

    // The piggybacked outage count surfaced in the daemon's stats.
    let stats = client.stats().expect("stats");
    let stats = stats.as_object().expect("object");
    assert_eq!(stats["worker_reconnects"].as_u64(), Some(2), "{stats:?}");

    client.shutdown().expect("shutdown");
    server.join().expect("server");
}
