//! `bichrome-serve` — the campaign daemon: many clients, one
//! executor, one store.
//!
//! A [`Daemon`] owns what `bichrome run` re-creates per invocation —
//! the persistent result [`Store`](bichrome_store::Store), the
//! instance cache, and a worker pool — and multiplexes every
//! submitted campaign onto them. Overlapping grids submitted by
//! different clients therefore share work twice over: trials already
//! in the store are skipped at submit time, and distinct graph
//! instances still pending are built exactly once *across* jobs by
//! the shared cache.
//!
//! The wire protocol is line-delimited JSON over a Unix-domain or TCP
//! socket ([`proto`]): `submit` (inline campaign TOML → job id),
//! `status` / `jobs`, `watch` (streams per-trial progress), `report`
//! / `diff`, `cancel`, graceful `shutdown` (drain, then checkpoint
//! the store), and the remote-worker pair `lease` / `complete` —
//! `bichrome work --connect` pulls trial descriptors with `lease`,
//! computes them locally, and streams records back with `complete`;
//! leases that outlive their timeout are re-queued by the daemon's
//! reaper, so a worker dying mid-trial costs nothing but time.
//!
//! Observability rides along on both front-ends: the `metrics` verb
//! returns the process-wide [`bichrome_obs`] registry as JSON, and
//! [`spawn_metrics_http`] serves the same registry as a Prometheus
//! `GET /metrics` endpoint (`bichrome serve --http`).
//!
//! # Quickstart
//!
//! ```
//! use bichrome_serve::{Addr, Client, Daemon, DaemonConfig, Listener};
//!
//! let dir = std::env::temp_dir().join(format!("bichrome-doc-{}", std::process::id()));
//! let daemon = Daemon::start(dir.join("store"), DaemonConfig::default()).unwrap();
//!
//! // Serve on a Unix socket in the background…
//! let addr = Addr::Unix(dir.join("daemon.sock"));
//! let listener = Listener::bind(&addr).unwrap();
//! let server = {
//!     let daemon = daemon.clone();
//!     std::thread::spawn(move || daemon.serve(listener))
//! };
//!
//! // …and drive it like any client would.
//! let client = Client::new(addr);
//! let job = client
//!     .submit(
//!         r#"
//!         [campaign]
//!         protocols = ["edge/theorem3-zero-comm"]
//!         graphs    = ["path(n=12)"]
//!         seeds     = "0..2"
//!         "#,
//!     )
//!     .unwrap();
//! let end = client.watch(job, |_trial| {}).unwrap();
//! assert_eq!(end.as_object().unwrap()["state"].as_str(), Some("done"));
//!
//! client.shutdown().unwrap();
//! server.join().unwrap().unwrap();
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! In-process embedding skips the socket entirely: [`Daemon::submit`]
//! / [`Daemon::watch`] / [`Daemon::report`] are the same operations
//! the connection handler calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod net;
pub mod proto;
pub mod server;

/// The wire codec, re-exported for callers consuming watch events /
/// status objects ([`json::Value`]).
pub use bichrome_store::json;
pub use client::{Client, LeaseGrant, TrialLease};
pub use http::spawn_metrics_http;
pub use net::{Addr, Listener, Stream};
pub use proto::{Format, ProtoError, Request};
pub use server::{Daemon, DaemonConfig};
