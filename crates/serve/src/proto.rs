//! The wire protocol: one JSON object per line, one request per
//! connection, reusing the workspace's hand-written codec
//! ([`bichrome_store::json`]).
//!
//! Requests are `{"op": "...", ...}`; responses are
//! `{"ok": true, ...}` or `{"ok": false, "error": "..."}`. The
//! `watch` request is the one streaming case: after the `ok` line the
//! daemon keeps the connection open and emits `{"event": "trial",
//! ...}` lines, closing with `{"event": "end", ...}`.
//!
//! Trial seeds cross the wire as *strings*: the JSON parser holds
//! numbers as `f64`, which would corrupt seeds above 2⁵³.

use bichrome_store::json::{self, Value};

/// Output format asked of `report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Rendered table.
    #[default]
    Text,
    /// Full `CampaignReport` JSON.
    Json,
    /// The pinned per-cell CSV.
    Csv,
}

impl Format {
    /// Parses `"text"` / `"json"` / `"csv"`.
    ///
    /// # Errors
    ///
    /// Names the unknown format.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format {other:?} (text|json|csv)")),
        }
    }
}

/// Why a daemon interaction failed, split by what the caller should
/// do about it: [`ProtoError::is_retryable`] separates transient
/// conditions (daemon unreachable or draining — back off and try
/// again) from permanent ones (malformed traffic, rejected requests —
/// retrying the same bytes can only fail the same way). The
/// self-healing worker loop branches on exactly this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// No daemon answered (connect/send/recv failed). Retryable: the
    /// daemon may be restarting, or the network flaking.
    Unreachable(String),
    /// The daemon answered but is shutting down. Retryable: a
    /// replacement daemon often comes up at the same address.
    Draining(String),
    /// A line failed to parse, or a response was missing required
    /// fields. Fatal: a protocol bug, not a transient condition.
    Malformed(String),
    /// The daemon processed the request and said no. Fatal: the same
    /// request would be refused again.
    Rejected(String),
}

impl ProtoError {
    /// Whether backing off and retrying the same request can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ProtoError::Unreachable(_) | ProtoError::Draining(_))
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Unreachable(msg) => write!(f, "daemon unreachable: {msg}"),
            ProtoError::Draining(msg) => write!(f, "daemon draining: {msg}"),
            ProtoError::Malformed(msg) => write!(f, "malformed protocol traffic: {msg}"),
            ProtoError::Rejected(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Renders for the CLI's `Result<_, String>` surfaces; the typed
/// variant stays available to callers that branch on retryability.
impl From<ProtoError> for String {
    fn from(e: ProtoError) -> String {
        e.to_string()
    }
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit an inline campaign declaration (the TOML text itself,
    /// not a path — the daemon may not share a filesystem view with
    /// the client).
    Submit {
        /// The `[campaign]` TOML text.
        campaign: String,
    },
    /// Snapshot one job's progress.
    Status {
        /// Job id from `submit`.
        job: u64,
    },
    /// List every job the daemon knows.
    Jobs,
    /// Stream a job's per-trial progress until it ends.
    Watch {
        /// Job id from `submit`.
        job: u64,
    },
    /// Render a report: of one finished job, or (without `job`) of
    /// the daemon's whole store.
    Report {
        /// Finished job id; `None` aggregates the store.
        job: Option<u64>,
        /// Output format.
        format: Format,
    },
    /// Compare two finished jobs' reports (a is the baseline).
    Diff {
        /// Baseline job id.
        a: u64,
        /// Candidate job id.
        b: u64,
    },
    /// Cooperatively cancel a running job.
    Cancel {
        /// Job id from `submit`.
        job: u64,
    },
    /// Daemon-wide counters (instance cache, store, jobs).
    Stats,
    /// The process-wide observability registry
    /// ([`bichrome_obs::render_json`]) — every counter, gauge, and
    /// histogram, in the same registry `GET /metrics` exposes in
    /// Prometheus text form.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Drain in-flight jobs, checkpoint the store, and exit.
    Shutdown,
    /// A remote worker asks for one trial to compute. The daemon
    /// answers with a trial descriptor plus a lease token, with
    /// `{"idle": true}` when the queue is empty, or with
    /// `{"stop": true}` when it is draining with an empty queue and
    /// workers should exit. The request piggybacks the worker's
    /// self-healing telemetry since its last successful contact, so
    /// the daemon's registry aggregates reconnect behaviour across
    /// the whole fleet without a separate reporting channel.
    Lease {
        /// Outages survived since the last accepted request (absent
        /// on the wire = 0).
        reconnects: u64,
        /// Cumulative backoff slept during those outages, in
        /// nanoseconds (absent on the wire = 0).
        backoff_ns: u64,
    },
    /// A remote worker returns a leased trial's computed record
    /// (the `TrialRecord` JSON, carried as a string).
    Complete {
        /// The lease token from the daemon's `lease` answer.
        lease: u64,
        /// The computed `TrialRecord`, serialized with
        /// `TrialRecord::to_json`.
        record: String,
    },
}

impl Request {
    /// The wire verb (`"op"` value) — the label the daemon's
    /// per-request counters and latency histograms are keyed by.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Jobs => "jobs",
            Request::Watch { .. } => "watch",
            Request::Report { .. } => "report",
            Request::Diff { .. } => "diff",
            Request::Cancel { .. } => "cancel",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
            Request::Lease { .. } => "lease",
            Request::Complete { .. } => "complete",
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line.trim())?;
        let obj = v.as_object().ok_or("request is not a JSON object")?;
        let op = obj
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request has no \"op\" string")?;
        let job_field = |field: &str| -> Result<u64, String> {
            obj.get(field)
                .and_then(Value::as_u64)
                .ok_or(format!("{op:?} needs an integer {field:?} field"))
        };
        match op {
            "submit" => Ok(Request::Submit {
                campaign: obj
                    .get("campaign")
                    .and_then(Value::as_str)
                    .ok_or("\"submit\" needs a \"campaign\" string (inline TOML)")?
                    .to_string(),
            }),
            "status" => Ok(Request::Status {
                job: job_field("job")?,
            }),
            "jobs" => Ok(Request::Jobs),
            "watch" => Ok(Request::Watch {
                job: job_field("job")?,
            }),
            "report" => Ok(Request::Report {
                job: match obj.get("job") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or("\"report\" job field must be an integer")?,
                    ),
                },
                format: match obj.get("format") {
                    None => Format::Text,
                    Some(v) => Format::parse(
                        v.as_str()
                            .ok_or("\"report\" format field must be a string")?,
                    )?,
                },
            }),
            "diff" => Ok(Request::Diff {
                a: job_field("a")?,
                b: job_field("b")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: job_field("job")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "lease" => {
                let opt_u64 = |field: &str| -> Result<u64, String> {
                    match obj.get(field) {
                        None => Ok(0),
                        Some(v) => v
                            .as_u64()
                            .ok_or(format!("\"lease\" {field} field must be an integer")),
                    }
                };
                Ok(Request::Lease {
                    reconnects: opt_u64("reconnects")?,
                    backoff_ns: opt_u64("backoff_ns")?,
                })
            }
            "complete" => Ok(Request::Complete {
                lease: job_field("lease")?,
                record: obj
                    .get("record")
                    .and_then(Value::as_str)
                    .ok_or("\"complete\" needs a \"record\" string (TrialRecord JSON)")?
                    .to_string(),
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Encodes the request as its wire line (without newline).
    pub fn encode(&self) -> String {
        let mut w = json::Writer::object();
        match self {
            Request::Submit { campaign } => {
                w.field_str("op", "submit");
                w.field_str("campaign", campaign);
            }
            Request::Status { job } => {
                w.field_str("op", "status");
                w.field_u64("job", *job);
            }
            Request::Jobs => w.field_str("op", "jobs"),
            Request::Watch { job } => {
                w.field_str("op", "watch");
                w.field_u64("job", *job);
            }
            Request::Report { job, format } => {
                w.field_str("op", "report");
                if let Some(job) = job {
                    w.field_u64("job", *job);
                }
                w.field_str(
                    "format",
                    match format {
                        Format::Text => "text",
                        Format::Json => "json",
                        Format::Csv => "csv",
                    },
                );
            }
            Request::Diff { a, b } => {
                w.field_str("op", "diff");
                w.field_u64("a", *a);
                w.field_u64("b", *b);
            }
            Request::Cancel { job } => {
                w.field_str("op", "cancel");
                w.field_u64("job", *job);
            }
            Request::Stats => w.field_str("op", "stats"),
            Request::Metrics => w.field_str("op", "metrics"),
            Request::Ping => w.field_str("op", "ping"),
            Request::Shutdown => w.field_str("op", "shutdown"),
            Request::Lease {
                reconnects,
                backoff_ns,
            } => {
                w.field_str("op", "lease");
                if *reconnects > 0 {
                    w.field_u64("reconnects", *reconnects);
                }
                if *backoff_ns > 0 {
                    w.field_u64("backoff_ns", *backoff_ns);
                }
            }
            Request::Complete { lease, record } => {
                w.field_str("op", "complete");
                w.field_u64("lease", *lease);
                w.field_str("record", record);
            }
        }
        w.finish()
    }
}

/// An `{"ok": false, "error": ...}` line.
pub fn error_line(msg: &str) -> String {
    let mut w = json::Writer::object();
    w.field_bool("ok", false);
    w.field_str("error", msg);
    w.finish()
}

/// An error line tagged with a machine-readable `kind`, so clients
/// can classify without string-matching the human text. The only
/// kind emitted today is `"draining"` (see [`ProtoError::Draining`]);
/// untagged error lines decode as [`ProtoError::Rejected`].
pub fn error_line_kind(msg: &str, kind: &str) -> String {
    let mut w = json::Writer::object();
    w.field_bool("ok", false);
    w.field_str("error", msg);
    w.field_str("kind", kind);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let cases = [
            Request::Submit {
                campaign: "[campaign]\nseeds = \"0..2\"\n".to_string(),
            },
            Request::Status { job: 3 },
            Request::Jobs,
            Request::Watch { job: 7 },
            Request::Report {
                job: None,
                format: Format::Csv,
            },
            Request::Report {
                job: Some(2),
                format: Format::Text,
            },
            Request::Diff { a: 1, b: 2 },
            Request::Cancel { job: 9 },
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
            Request::Lease {
                reconnects: 0,
                backoff_ns: 0,
            },
            Request::Lease {
                reconnects: 3,
                backoff_ns: 700_000_000,
            },
            Request::Complete {
                lease: 41,
                record: "{\"label\":\"near-regular(n=6,d=2)\",\"seed\":\"3\"}".to_string(),
            },
        ];
        for req in cases {
            let line = req.encode();
            assert_eq!(Request::parse(&line).expect("parses"), req, "{line}");
            assert!(
                line.contains(&format!("\"op\":\"{}\"", req.verb())),
                "verb/op mismatch: {line}"
            );
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("nonsense", "expected"),
            ("[1,2]", "not a JSON object"),
            ("{}", "no \"op\""),
            ("{\"op\":\"frob\"}", "unknown op"),
            ("{\"op\":\"status\"}", "integer \"job\""),
            ("{\"op\":\"submit\"}", "inline TOML"),
            ("{\"op\":\"report\",\"format\":\"yaml\"}", "yaml"),
            ("{\"op\":\"complete\"}", "integer \"lease\""),
            ("{\"op\":\"complete\",\"lease\":1}", "TrialRecord JSON"),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "{line}: {err}"
            );
        }
    }

    #[test]
    fn bare_lease_lines_decode_with_zeroed_telemetry() {
        // Wire compatibility: a worker that predates the telemetry
        // fields sends a bare {"op":"lease"} — absent means zero.
        assert_eq!(
            Request::parse("{\"op\":\"lease\"}").expect("parses"),
            Request::Lease {
                reconnects: 0,
                backoff_ns: 0,
            }
        );
        let err = Request::parse("{\"op\":\"lease\",\"reconnects\":\"many\"}").expect_err("typed");
        assert!(err.contains("integer"), "{err}");
    }

    #[test]
    fn retryability_splits_transient_from_fatal() {
        assert!(ProtoError::Unreachable("x".into()).is_retryable());
        assert!(ProtoError::Draining("x".into()).is_retryable());
        assert!(!ProtoError::Malformed("x".into()).is_retryable());
        assert!(!ProtoError::Rejected("x".into()).is_retryable());
        let rendered: String = ProtoError::Unreachable("no route".into()).into();
        assert!(rendered.contains("no route"), "{rendered}");
    }

    #[test]
    fn tagged_error_lines_carry_their_kind() {
        let v = Value::parse(&error_line_kind("going away", "draining")).expect("parses");
        let obj = v.as_object().expect("object");
        assert_eq!(obj["ok"], Value::Bool(false));
        assert_eq!(obj["kind"].as_str(), Some("draining"));
        assert_eq!(obj["error"].as_str(), Some("going away"));
    }

    #[test]
    fn error_lines_are_wellformed_json() {
        let v = Value::parse(&error_line("bad \"quote\"")).expect("parses");
        let obj = v.as_object().expect("object");
        assert_eq!(obj["ok"], Value::Bool(false));
        assert_eq!(obj["error"].as_str(), Some("bad \"quote\""));
    }
}
