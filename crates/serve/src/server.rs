//! The daemon: one shared store, one process-wide instance cache, one
//! worker pool — every submitted campaign's pending trials multiplex
//! onto the same queue.
//!
//! # Architecture
//!
//! A [`Daemon`] owns the process-scoped resources:
//!
//! * the persistent [`Store`] (every job reads and appends through
//!   one `Arc<Mutex<Store>>`, so concurrent jobs share warm results
//!   the moment they commit);
//! * one [`InstanceCache`] — when two in-flight jobs touch the same
//!   `(spec, seed)` graph, it is built exactly once, *across* jobs,
//!   not once per job as `Campaign::run` would;
//! * a fixed pool of worker threads feeding off one FIFO of
//!   `Task`s (`(job, pending-trial-index)` pairs).
//!
//! `submit` parses an inline campaign declaration, consults the store
//! ([`Campaign::prepare`](bichrome_runner::Campaign::prepare)) and
//! enqueues only the cold trials; a fully
//! warm submission finalizes immediately with `computed 0 trials`.
//! Jobs finish when their last task commits — whichever worker that
//! is runs the aggregation and wakes the job's watchers.
//!
//! # Durability
//!
//! Appends are group-flushed (`StoreConfig::flush_every`), flushed
//! again when each job finalizes, and the graceful `shutdown` request
//! drains all in-flight jobs then checkpoints (roll + atomic meta).
//! A hard kill at *any* point loses at most the unflushed tail of the
//! active segment: the next open salvages everything durable and a
//! re-submit recomputes only what was lost (`tests/daemon.rs` kills a
//! store mid-write at a random byte and proves resume convergence).

use crate::net::{Addr, Listener, Stream};
use crate::proto::{error_line, error_line_kind, Format, Request};
use bichrome_runner::{
    diff_reports, CacheStats, CampaignFile, CampaignReport, ExecStats, InstanceCache, PreparedRun,
    TrialRecord,
};
use bichrome_store::json;
use bichrome_store::{Store, StoreConfig};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Daemon::start`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Whether to run the local worker pool at all. `false` turns the
    /// daemon into a pure scheduler: every trial waits for a remote
    /// worker's `lease` — the configuration the distributed e2e test
    /// uses to prove the workers did all the computing.
    pub local_pool: bool,
    /// How long a leased trial may stay outstanding before the reaper
    /// assumes its worker died and re-queues it. Re-issuing is always
    /// safe — a trial is a pure function of its key, so whichever copy
    /// commits first wins and a late duplicate is discarded.
    pub lease_timeout: Duration,
    /// Per-connection socket read/write timeout. A worker that dials
    /// in and then hangs (or a connection severed without a FIN)
    /// would otherwise pin its handler thread forever; with the
    /// timeout the read errors out and the thread retires. Zero
    /// disables the timeouts.
    pub io_timeout: Duration,
    /// Store tuning; the default batches appends (`flush_every: 64`)
    /// since the daemon re-flushes at every job boundary anyway.
    pub store: StoreConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 0,
            local_pool: true,
            lease_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
            store: StoreConfig {
                flush_every: 64,
                ..StoreConfig::default()
            },
        }
    }
}

/// The drain-rejection message — compared against in the connection
/// handler to tag the error line `kind:"draining"` (retryable).
const DRAINING_MSG: &str = "daemon is shutting down";

/// One schedulable unit: pending trial `idx` of `job`.
struct Task {
    job: Arc<Job>,
    idx: usize,
    /// When the task (re-)entered the queue — queue-latency histograms
    /// measure from here to the pop.
    enqueued: Instant,
}

impl Task {
    fn new(job: Arc<Job>, idx: usize) -> Task {
        Task {
            job,
            idx,
            enqueued: Instant::now(),
        }
    }
}

/// One outstanding remote-worker lease: trial `idx` of `job` is out
/// with some worker until `deadline`.
struct Lease {
    job: Arc<Job>,
    idx: usize,
    deadline: Instant,
    /// When the lease was issued — service-latency histograms measure
    /// from here to the worker's `complete`.
    issued: Instant,
}

/// Terminal and non-terminal job states.
enum JobState {
    Running,
    Done(Box<CampaignReport>, ExecStats),
    Cancelled,
    Failed(String),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Done(..) => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }
}

/// State guarded by one mutex so watcher registration and job
/// finalization cannot interleave (a watcher is either in the list
/// when the end event fans out, or sees the terminal state directly).
struct JobInner {
    state: JobState,
    watchers: Vec<mpsc::Sender<String>>,
}

/// One submitted campaign.
struct Job {
    id: u64,
    prepared: PreparedRun,
    remaining: AtomicUsize,
    computed: AtomicU64,
    cancel: AtomicBool,
    inner: Mutex<JobInner>,
}

impl Job {
    /// The CLI-pinned accounting phrase.
    fn summary_phrase(&self) -> String {
        format!(
            "computed {} trials ({} skipped via store)",
            self.computed.load(Ordering::SeqCst),
            self.prepared.skipped()
        )
    }

    /// Marks the job failed (first failure wins) and stops its
    /// remaining tasks cooperatively.
    fn fail(&self, msg: String) {
        let mut inner = self.inner.lock().expect("job poisoned");
        if matches!(inner.state, JobState::Running) {
            inner.state = JobState::Failed(msg);
        }
        drop(inner);
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Fans one per-trial progress event out to the watchers.
    fn emit_trial(&self, idx: usize, computed_so_far: u64) {
        let key = self.prepared.pending_key(idx);
        let mut w = json::Writer::object();
        w.field_str("event", "trial");
        w.field_u64("job", self.id);
        w.field_str("protocol", &key.protocol);
        w.field_str("graph", &key.graph);
        w.field_str("partitioner", &key.partitioner);
        w.field_str("seed", &key.seed.to_string());
        w.field_u64("computed", computed_so_far);
        w.field_u64("pending", self.prepared.pending() as u64);
        let line = w.finish();
        let mut inner = self.inner.lock().expect("job poisoned");
        inner.watchers.retain(|tx| tx.send(line.clone()).is_ok());
    }

    /// The closing event for `state` (not necessarily terminal yet —
    /// callers pass the post-finalize state).
    fn end_event_line(&self, state: &JobState) -> String {
        let mut w = json::Writer::object();
        w.field_str("event", "end");
        w.field_u64("job", self.id);
        w.field_str("state", state.label());
        w.field_u64("computed", self.computed.load(Ordering::SeqCst));
        w.field_u64("skipped", self.prepared.skipped());
        w.field_str("summary", &self.summary_phrase());
        if let JobState::Failed(msg) = state {
            w.field_str("error", msg);
        }
        w.finish()
    }

    /// One `{"ok":true,...}` status snapshot.
    fn status_line(&self) -> String {
        let inner = self.inner.lock().expect("job poisoned");
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_u64("job", self.id);
        w.field_str("state", inner.state.label());
        w.field_u64("total", self.prepared.total_trials() as u64);
        w.field_u64("pending", self.prepared.pending() as u64);
        w.field_u64("computed", self.computed.load(Ordering::SeqCst));
        w.field_u64("skipped", self.prepared.skipped());
        w.field_u64("remaining", self.remaining.load(Ordering::SeqCst) as u64);
        w.field_str("summary", &self.summary_phrase());
        if let JobState::Failed(msg) = &inner.state {
            w.field_str("error", msg);
        }
        w.finish()
    }
}

/// The campaign daemon. See the [module docs](self) for the
/// architecture; construct with [`Daemon::start`], talk to it
/// in-process through the `submit`/`status`/… methods or over a
/// socket via [`Daemon::serve`] + [`crate::Client`].
pub struct Daemon {
    store: Arc<Mutex<Store>>,
    cache: InstanceCache,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_job: AtomicU64,
    queue: Mutex<VecDeque<Task>>,
    queue_cv: Condvar,
    /// Jobs submitted but not yet finalized.
    active: Mutex<usize>,
    idle_cv: Condvar,
    /// Set by `shutdown`: refuse new submissions.
    draining: AtomicBool,
    /// Set after the drain: workers exit once the queue empties.
    stopping: AtomicBool,
    /// Set once the shutdown response is on the wire: the accept
    /// loop's cue to exit on its next (self-)connection.
    done_serving: AtomicBool,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Outstanding remote-worker leases by token. A `complete` must
    /// find its token here to commit; the reaper removes expired
    /// entries and re-queues their tasks, which is what makes the
    /// remove an exactly-once retirement arbiter — whichever of
    /// {completion, expiry} takes the token owns the trial.
    leases: Mutex<HashMap<u64, Lease>>,
    next_lease: AtomicU64,
    lease_timeout: Duration,
    io_timeout: Duration,
    /// The reaper parks on this between scans; shutdown pokes it.
    reaper_mx: Mutex<()>,
    reaper_cv: Condvar,
    leases_issued: AtomicU64,
    leases_completed: AtomicU64,
    leases_expired: AtomicU64,
}

impl Daemon {
    /// Opens (or creates) the store at `dir` and starts the worker
    /// pool. The returned daemon accepts work immediately, with or
    /// without a listening socket.
    ///
    /// # Errors
    ///
    /// Propagates the store open failure as its rendered message.
    pub fn start(dir: impl Into<PathBuf>, config: DaemonConfig) -> Result<Arc<Daemon>, String> {
        let store = Store::open_or_create_with(dir, config.store)
            .map_err(|e| format!("opening store: {e}"))?;
        let daemon = Arc::new(Daemon {
            store: Arc::new(Mutex::new(store)),
            cache: InstanceCache::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_job: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            active: Mutex::new(0),
            idle_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            done_serving: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            leases: Mutex::new(HashMap::new()),
            next_lease: AtomicU64::new(0),
            lease_timeout: config.lease_timeout,
            io_timeout: config.io_timeout,
            reaper_mx: Mutex::new(()),
            reaper_cv: Condvar::new(),
            leases_issued: AtomicU64::new(0),
            leases_completed: AtomicU64::new(0),
            leases_expired: AtomicU64::new(0),
        });
        let n = match (config.local_pool, config.workers) {
            (false, _) => 0,
            (true, 0) => thread::available_parallelism().map_or(1, |n| n.get()),
            (true, n) => n,
        };
        let mut handles = daemon.workers.lock().expect("workers poisoned");
        for _ in 0..n {
            let d = Arc::clone(&daemon);
            handles.push(thread::spawn(move || d.worker_loop()));
        }
        // The lease reaper runs even (especially) without a local
        // pool: a dead worker's trials must come back to the queue.
        let d = Arc::clone(&daemon);
        handles.push(thread::spawn(move || d.reaper_loop()));
        drop(handles);
        Ok(daemon)
    }

    /// Submits an inline campaign declaration (TOML text). The file's
    /// own `store` key is ignored — every job runs against the
    /// daemon's store. Returns the job id; a fully warm submission is
    /// already `done` when this returns.
    ///
    /// # Errors
    ///
    /// Rejects malformed declarations and submissions during
    /// shutdown.
    pub fn submit(&self, campaign_toml: &str) -> Result<u64, String> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(DRAINING_MSG.to_string());
        }
        let file = CampaignFile::parse(campaign_toml)?;
        let prepared = file
            .to_campaign(None)
            .with_shared_store(Arc::clone(&self.store))
            .prepare()
            .map_err(|e| format!("store: {e}"))?;
        let id = self.next_job.fetch_add(1, Ordering::SeqCst) + 1;
        let pending = prepared.pending();
        let job = Arc::new(Job {
            id,
            prepared,
            remaining: AtomicUsize::new(pending),
            computed: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state: JobState::Running,
                watchers: Vec::new(),
            }),
        });
        self.jobs
            .lock()
            .expect("jobs poisoned")
            .insert(id, Arc::clone(&job));
        *self.active.lock().expect("active poisoned") += 1;
        if pending == 0 {
            self.finalize(&job);
        } else {
            let mut q = self.queue.lock().expect("queue poisoned");
            for idx in 0..pending {
                q.push_back(Task::new(Arc::clone(&job), idx));
            }
            drop(q);
            self.queue_cv.notify_all();
        }
        Ok(id)
    }

    fn job(&self, id: u64) -> Result<Arc<Job>, String> {
        self.jobs
            .lock()
            .expect("jobs poisoned")
            .get(&id)
            .cloned()
            .ok_or(format!("no such job {id}"))
    }

    /// One status snapshot line for `job`.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn status(&self, id: u64) -> Result<String, String> {
        Ok(self.job(id)?.status_line())
    }

    /// `{"ok":true,"jobs":[...]}` — every job, oldest first.
    pub fn jobs_line(&self) -> String {
        let jobs = self.jobs.lock().expect("jobs poisoned");
        let items: Vec<String> = jobs.values().map(|j| j.status_line()).collect();
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_raw("jobs", &format!("[{}]", items.join(",")));
        w.finish()
    }

    /// Subscribes to a job's progress. Returns the acknowledgement
    /// line and a receiver of event lines (ending with the `end`
    /// event); a job that already finished yields the `end` event
    /// immediately.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn watch(&self, id: u64) -> Result<(String, mpsc::Receiver<String>), String> {
        let job = self.job(id)?;
        let (tx, rx) = mpsc::channel();
        let mut inner = job.inner.lock().expect("job poisoned");
        if matches!(inner.state, JobState::Running) {
            inner.watchers.push(tx);
        } else {
            // Terminal already: replay the closing event; dropping
            // `tx` here ends the stream after it.
            let _ = tx.send(job.end_event_line(&inner.state));
        }
        drop(inner);
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_u64("job", id);
        Ok((w.finish(), rx))
    }

    /// Cooperative cancel: queued tasks drain as no-ops, in-flight
    /// trials finish (and still commit). No-op on finished jobs.
    ///
    /// # Errors
    ///
    /// Unknown job id.
    pub fn cancel(&self, id: u64) -> Result<String, String> {
        let job = self.job(id)?;
        job.cancel.store(true, Ordering::SeqCst);
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_u64("job", id);
        w.field_bool("cancelling", true);
        Ok(w.finish())
    }

    /// Renders a report: of one finished job, or of the whole store.
    ///
    /// # Errors
    ///
    /// Unknown / unfinished job, or an undecodable store record.
    pub fn report(&self, job: Option<u64>, format: Format) -> Result<String, String> {
        let render = |report: &CampaignReport, trailer: Option<String>| match format {
            Format::Json => report.to_json(),
            Format::Csv => report.to_csv(),
            Format::Text => {
                let mut out = report.render_table();
                if let Some(t) = trailer {
                    out.push_str(&t);
                    out.push('\n');
                }
                out
            }
        };
        match job {
            Some(id) => {
                let job = self.job(id)?;
                let inner = job.inner.lock().expect("job poisoned");
                match &inner.state {
                    JobState::Done(report, stats) => Ok(render(
                        report,
                        Some(format!(
                            "{} · {:.3}s worker time",
                            job.summary_phrase(),
                            stats.run_nanos as f64 / 1e9
                        )),
                    )),
                    other => Err(format!("job {id} is {}, not done", other.label())),
                }
            }
            None => {
                let store = self.store.lock().expect("store poisoned");
                let report = CampaignReport::from_store(&store)?;
                Ok(render(&report, None))
            }
        }
    }

    /// Baseline-relative diff of two finished jobs (`a` is baseline).
    ///
    /// # Errors
    ///
    /// Unknown / unfinished job ids.
    pub fn diff(&self, a: u64, b: u64) -> Result<String, String> {
        let report_of = |id: u64| -> Result<Box<CampaignReport>, String> {
            let job = self.job(id)?;
            let inner = job.inner.lock().expect("job poisoned");
            match &inner.state {
                JobState::Done(report, _) => Ok(report.clone()),
                other => Err(format!("job {id} is {}, not done", other.label())),
            }
        };
        let (ra, rb) = (report_of(a)?, report_of(b)?);
        Ok(diff_reports(
            &ra,
            &rb,
            &format!("job {a}"),
            &format!("job {b}"),
        ))
    }

    /// The daemon-wide instance-cache counters — across *all* jobs,
    /// which is what proves cross-job dedup (two overlapping grids,
    /// `graphs_built` counts each distinct graph once).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// `{"ok":true,...}` daemon counters: cache, store, jobs, leases.
    pub fn stats_line(&self) -> String {
        let cs = self.cache_stats();
        let (records, dead) = {
            let store = self.store.lock().expect("store poisoned");
            (store.len() as u64, store.dead_records() as u64)
        };
        let (outstanding, ages) = {
            let leases = self.leases.lock().expect("leases poisoned");
            let now = Instant::now();
            let mut ages: Vec<u64> = leases
                .values()
                .map(|l| now.saturating_duration_since(l.issued).as_nanos() as u64)
                .collect();
            ages.sort_unstable();
            (leases.len() as u64, ages)
        };
        // Nearest-rank over the *currently outstanding* leases — how
        // long today's in-flight work has been out, exactly (the
        // histograms below cover completed lifecycles, to within a
        // log₂ bucket).
        let age_pct = |p: f64| -> u64 {
            if ages.is_empty() {
                return 0;
            }
            let rank = ((p / 100.0 * ages.len() as f64).ceil() as usize).clamp(1, ages.len());
            ages[rank - 1]
        };
        let queue = bichrome_obs::histogram("bichrome_lease_queue_nanos");
        let service = bichrome_obs::histogram("bichrome_lease_service_nanos");
        let backoff = bichrome_obs::histogram("bichrome_worker_backoff_nanos");
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_u64("graphs_requested", cs.graphs_requested);
        w.field_u64("graphs_built", cs.graphs_built);
        w.field_u64("partitions_requested", cs.partitions_requested);
        w.field_u64("partitions_built", cs.partitions_built);
        w.field_u64(
            "jobs",
            self.jobs.lock().expect("jobs poisoned").len() as u64,
        );
        w.field_u64("records", records);
        w.field_u64("dead_records", dead);
        w.field_u64("leases_outstanding", outstanding);
        w.field_u64("leases_issued", self.leases_issued.load(Ordering::SeqCst));
        w.field_u64(
            "leases_completed",
            self.leases_completed.load(Ordering::SeqCst),
        );
        w.field_u64("leases_expired", self.leases_expired.load(Ordering::SeqCst));
        // The chaos ledger: how often trials bounced back to the
        // queue, how many late answers were dropped, and how hard the
        // worker fleet had to fight to stay connected.
        w.field_u64(
            "lease_requeues",
            bichrome_obs::counter("bichrome_lease_requeues_total").get(),
        );
        w.field_u64(
            "completes_discarded",
            bichrome_obs::counter("bichrome_completes_discarded_total").get(),
        );
        w.field_u64(
            "worker_reconnects",
            bichrome_obs::counter("bichrome_worker_reconnects_total").get(),
        );
        w.field_f64("worker_backoff_ns_p50", backoff.percentile(50.0));
        w.field_f64("worker_backoff_ns_p95", backoff.percentile(95.0));
        w.field_f64("worker_backoff_ns_p99", backoff.percentile(99.0));
        w.field_u64("lease_age_ns_p50", age_pct(50.0));
        w.field_u64("lease_age_ns_p95", age_pct(95.0));
        w.field_u64("lease_age_ns_p99", age_pct(99.0));
        w.field_f64("lease_queue_ns_p50", queue.percentile(50.0));
        w.field_f64("lease_queue_ns_p95", queue.percentile(95.0));
        w.field_f64("lease_queue_ns_p99", queue.percentile(99.0));
        w.field_f64("lease_service_ns_p50", service.percentile(50.0));
        w.field_f64("lease_service_ns_p95", service.percentile(95.0));
        w.field_f64("lease_service_ns_p99", service.percentile(99.0));
        w.finish()
    }

    /// `{"ok":true,"metrics":{...}}` — the process-wide observability
    /// registry ([`bichrome_obs::render_json`]): every counter, gauge,
    /// and histogram, the same registry `GET /metrics` serves in
    /// Prometheus text form.
    pub fn metrics_line(&self) -> String {
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_raw("metrics", &bichrome_obs::render_json());
        w.finish()
    }

    /// Graceful shutdown: refuse new submissions, drain every
    /// in-flight job, stop the workers, and checkpoint the store
    /// (flush + segment roll + atomic meta rewrite).
    ///
    /// # Errors
    ///
    /// Propagates the checkpoint failure as its rendered message.
    pub fn shutdown(&self) -> Result<(), String> {
        self.draining.store(true, Ordering::SeqCst);
        let mut active = self.active.lock().expect("active poisoned");
        while *active > 0 {
            active = self.idle_cv.wait(active).expect("active poisoned");
        }
        drop(active);
        self.stopping.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        self.reaper_cv.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
        self.store
            .lock()
            .expect("store poisoned")
            .checkpoint()
            .map_err(|e| format!("store checkpoint: {e}"))
    }

    // ----- the worker pool ------------------------------------------------

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if let Some(t) = q.pop_front() {
                        break Some(t);
                    }
                    if self.stopping.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = self.queue_cv.wait(q).expect("queue poisoned");
                }
            };
            match task {
                Some(task) => self.process(task),
                None => return,
            }
        }
    }

    fn process(&self, task: Task) {
        bichrome_obs::histogram("bichrome_task_queue_nanos")
            .observe(task.enqueued.elapsed().as_nanos() as u64);
        let job = &task.job;
        if !job.cancel.load(Ordering::SeqCst) {
            // A panicking protocol poisons only its own job, not the
            // daemon: the job turns `failed` and its queue drains.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job.prepared.run_pending(task.idx, &self.cache)
            }));
            match outcome {
                Ok(record) => match job.prepared.commit(task.idx, record) {
                    Ok(()) => {
                        let done = job.computed.fetch_add(1, Ordering::SeqCst) + 1;
                        job.emit_trial(task.idx, done);
                    }
                    Err(e) => job.fail(format!("store append: {e}")),
                },
                Err(panic) => job.fail(panic_message(panic.as_ref())),
            }
        }
        self.retire(job);
    }

    /// Retires one pending trial of `job` — the last retirement (by
    /// local worker, remote completion, or cancelled-task drain)
    /// finalizes the job.
    fn retire(&self, job: &Arc<Job>) {
        if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finalize(job);
        }
    }

    /// Runs exactly once per job, by whichever worker (or `submit`,
    /// for warm jobs) retires its last pending trial.
    fn finalize(&self, job: &Arc<Job>) {
        let mut inner = job.inner.lock().expect("job poisoned");
        if matches!(inner.state, JobState::Running) {
            if job.cancel.load(Ordering::SeqCst) {
                inner.state = JobState::Cancelled;
            } else {
                let (report, stats) = job.prepared.finish();
                inner.state = JobState::Done(Box::new(report), stats);
            }
        }
        let end = job.end_event_line(&inner.state);
        for tx in inner.watchers.drain(..) {
            let _ = tx.send(end.clone());
        }
        drop(inner);
        // Job boundaries are durability boundaries: whatever the
        // group-flush batching left buffered lands now.
        let _ = self.store.lock().expect("store poisoned").flush();
        let mut active = self.active.lock().expect("active poisoned");
        *active -= 1;
        drop(active);
        self.idle_cv.notify_all();
    }

    // ----- remote workers: lease / complete / reaper ----------------------

    /// Non-blocking pop for the lease path: cancelled jobs' queued
    /// tasks retire as no-ops on the way past, exactly as the local
    /// pool would have drained them.
    fn pop_task(&self) -> Option<Task> {
        let mut q = self.queue.lock().expect("queue poisoned");
        while let Some(t) = q.pop_front() {
            if t.job.cancel.load(Ordering::SeqCst) {
                drop(q);
                self.retire(&t.job);
                q = self.queue.lock().expect("queue poisoned");
            } else {
                return Some(t);
            }
        }
        None
    }

    /// Answers a remote worker's `lease` request: a trial descriptor
    /// plus token, `{"idle":true}` when nothing is queued, or
    /// `{"stop":true}` once the daemon is draining *and* the queue is
    /// empty (the worker's cue to exit). Queued trials are still
    /// handed out during a drain — with no local pool they are the
    /// only way the drain can finish.
    ///
    /// `reconnects` / `backoff_ns` are the worker's piggybacked
    /// self-healing telemetry (outages survived and backoff slept
    /// since its last accepted request); the daemon folds them into
    /// the process registry so `bichrome stats` sees the whole
    /// fleet's reconnect behaviour.
    pub fn lease_line(&self, reconnects: u64, backoff_ns: u64) -> String {
        if reconnects > 0 {
            bichrome_obs::counter("bichrome_worker_reconnects_total").add(reconnects);
        }
        if backoff_ns > 0 {
            bichrome_obs::histogram("bichrome_worker_backoff_nanos").observe(backoff_ns);
        }
        let Some(task) = self.pop_task() else {
            let mut w = json::Writer::object();
            w.field_bool("ok", true);
            if self.draining.load(Ordering::SeqCst) {
                w.field_bool("stop", true);
            } else {
                w.field_bool("idle", true);
            }
            return w.finish();
        };
        let token = self.next_lease.fetch_add(1, Ordering::SeqCst) + 1;
        bichrome_obs::histogram("bichrome_lease_queue_nanos")
            .observe(task.enqueued.elapsed().as_nanos() as u64);
        let key = task.job.prepared.pending_key(task.idx);
        let mut w = json::Writer::object();
        w.field_bool("ok", true);
        w.field_u64("lease", token);
        w.field_u64("job", task.job.id);
        w.field_str("protocol", &key.protocol);
        w.field_str("graph", &key.graph);
        w.field_str("partitioner", &key.partitioner);
        // Seeds are full-range u64; strings dodge the f64 wire format.
        w.field_str("seed", &key.seed.to_string());
        w.field_str("transport", task.job.prepared.transport().name());
        // Chaos campaigns ship their fault plan so the worker injects
        // the daemon's exact faults (recovered below the meter — the
        // record comes back bit-identical regardless).
        let fault = task.job.prepared.fault();
        if !fault.is_noop() {
            w.field_str("fault", &fault.to_string());
        }
        let line = w.finish();
        self.leases.lock().expect("leases poisoned").insert(
            token,
            Lease {
                job: task.job,
                idx: task.idx,
                deadline: Instant::now() + self.lease_timeout,
                issued: Instant::now(),
            },
        );
        self.leases_issued.fetch_add(1, Ordering::SeqCst);
        line
    }

    /// Accepts a leased trial's computed record. The token removal is
    /// the exactly-once arbiter: a token the reaper already expired
    /// (or one never issued) gets `{"accepted":false}` and the record
    /// is discarded — the re-queued copy is bit-identical anyway. A
    /// record that does not decode (or answers the wrong trial) sends
    /// the trial back to the queue and reports the error.
    pub fn complete_line(&self, token: u64, record_json: &str) -> String {
        let lease = self.leases.lock().expect("leases poisoned").remove(&token);
        let Some(lease) = lease else {
            // A worker presumed dead limped back with its answer
            // after the reaper re-queued its trial: the bit-identical
            // replacement is (or will be) committed by someone else.
            bichrome_obs::counter("bichrome_completes_discarded_total").inc();
            let mut w = json::Writer::object();
            w.field_bool("ok", true);
            w.field_bool("accepted", false);
            return w.finish();
        };
        bichrome_obs::histogram("bichrome_lease_service_nanos")
            .observe(lease.issued.elapsed().as_nanos() as u64);
        let job = lease.job;
        if job.cancel.load(Ordering::SeqCst) {
            // Mirrors the local pool on a cancelled job: the result is
            // dropped, the task retires.
            self.retire(&job);
            let mut w = json::Writer::object();
            w.field_bool("ok", true);
            w.field_bool("accepted", false);
            return w.finish();
        }
        let leased_seed = job.prepared.pending_key(lease.idx).seed;
        let requeue = |job: Arc<Job>, msg: String| -> String {
            bichrome_obs::counter("bichrome_lease_requeues_total").inc();
            let mut q = self.queue.lock().expect("queue poisoned");
            q.push_back(Task::new(job, lease.idx));
            drop(q);
            self.queue_cv.notify_all();
            error_line(&format!("{msg} — trial re-queued"))
        };
        let record = match TrialRecord::from_json(record_json) {
            Ok(r) => r,
            Err(e) => return requeue(job, format!("bad record: {e}")),
        };
        if record.seed != leased_seed {
            return requeue(
                job,
                format!(
                    "record answers seed {}, lease is seed {leased_seed}",
                    record.seed
                ),
            );
        }
        match job.prepared.commit(lease.idx, record) {
            Ok(()) => {
                let done = job.computed.fetch_add(1, Ordering::SeqCst) + 1;
                job.emit_trial(lease.idx, done);
                self.leases_completed.fetch_add(1, Ordering::SeqCst);
                self.retire(&job);
                let mut w = json::Writer::object();
                w.field_bool("ok", true);
                w.field_bool("accepted", true);
                w.finish()
            }
            Err(e) => {
                let msg = format!("store append: {e}");
                job.fail(msg.clone());
                self.retire(&job);
                error_line(&msg)
            }
        }
    }

    /// Scans for expired leases every quarter-timeout and sends their
    /// trials back to the queue; `shutdown` pokes `reaper_cv` so the
    /// thread exits promptly.
    fn reaper_loop(&self) {
        let tick = std::cmp::max(self.lease_timeout / 4, Duration::from_millis(10));
        let mut guard = self.reaper_mx.lock().expect("reaper poisoned");
        while !self.stopping.load(Ordering::SeqCst) {
            guard = self
                .reaper_cv
                .wait_timeout(guard, tick)
                .expect("reaper poisoned")
                .0;
            self.reap_expired();
        }
    }

    fn reap_expired(&self) {
        let now = Instant::now();
        let expired: Vec<Lease> = {
            let mut leases = self.leases.lock().expect("leases poisoned");
            let tokens: Vec<u64> = leases
                .iter()
                .filter(|(_, l)| l.deadline <= now)
                .map(|(&t, _)| t)
                .collect();
            tokens
                .into_iter()
                .map(|t| leases.remove(&t).expect("token just listed"))
                .collect()
        };
        if expired.is_empty() {
            return;
        }
        self.leases_expired
            .fetch_add(expired.len() as u64, Ordering::SeqCst);
        bichrome_obs::counter("bichrome_lease_requeues_total").add(expired.len() as u64);
        let mut q = self.queue.lock().expect("queue poisoned");
        for l in expired {
            q.push_back(Task::new(l.job, l.idx));
        }
        drop(q);
        self.queue_cv.notify_all();
    }

    // ----- the socket front-end -------------------------------------------

    /// Serves connections on `listener` until a `shutdown` request
    /// completes. One thread per connection; one request per
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn serve(self: &Arc<Self>, listener: Listener) -> io::Result<()> {
        let addr = listener.local_addr();
        loop {
            let conn = listener.accept()?;
            if self.done_serving.load(Ordering::SeqCst) {
                return Ok(());
            }
            // Bound every accepted connection's blocking reads and
            // writes: a client that dials in and goes silent (or a
            // connection severed without a FIN) must not pin this
            // handler thread forever. Failure to arm the timeout is
            // not fatal — the handler just runs unbounded.
            if !self.io_timeout.is_zero() {
                let _ = conn.set_timeouts(Some(self.io_timeout));
            }
            let daemon = Arc::clone(self);
            let wake = addr.clone();
            thread::spawn(move || daemon.handle_connection(conn, &wake));
        }
    }

    fn handle_connection(self: &Arc<Self>, conn: Stream, wake: &Addr) {
        let Ok(read_half) = conn.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = conn;
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return; // bare connect (liveness probe / shutdown wake)
        }
        let reply = |writer: &mut Stream, line: &str| {
            let _ = writeln!(writer, "{line}");
            let _ = writer.flush();
        };
        let req = match Request::parse(&line) {
            Ok(req) => req,
            Err(e) => return reply(&mut writer, &error_line(&e)),
        };
        let verb = req.verb();
        bichrome_obs::counter_labeled("bichrome_daemon_requests_total", &[("verb", verb)]).inc();
        // Observes on drop — for `watch` that spans the whole stream,
        // which is the request's actual service time.
        let _request_timer =
            bichrome_obs::histogram_labeled("bichrome_daemon_request_nanos", &[("verb", verb)])
                .start_timer();
        match req {
            Request::Submit { campaign } => match self.submit(&campaign) {
                Ok(id) => {
                    let mut w = json::Writer::object();
                    w.field_bool("ok", true);
                    w.field_u64("job", id);
                    reply(&mut writer, &w.finish());
                }
                // Tag the drain rejection so clients classify it as
                // retryable without matching the human-readable text.
                Err(e) if e == DRAINING_MSG => {
                    reply(&mut writer, &error_line_kind(&e, "draining"));
                }
                Err(e) => reply(&mut writer, &error_line(&e)),
            },
            Request::Status { job } => match self.status(job) {
                Ok(line) => reply(&mut writer, &line),
                Err(e) => reply(&mut writer, &error_line(&e)),
            },
            Request::Jobs => reply(&mut writer, &self.jobs_line()),
            Request::Watch { job } => match self.watch(job) {
                Ok((ack, rx)) => {
                    reply(&mut writer, &ack);
                    for event in rx {
                        if writeln!(writer, "{event}").is_err() {
                            break; // client hung up; sender side prunes us
                        }
                        let _ = writer.flush();
                    }
                }
                Err(e) => reply(&mut writer, &error_line(&e)),
            },
            Request::Report { job, format } => match self.report(job, format) {
                Ok(output) => {
                    let mut w = json::Writer::object();
                    w.field_bool("ok", true);
                    w.field_str("output", &output);
                    reply(&mut writer, &w.finish());
                }
                Err(e) => reply(&mut writer, &error_line(&e)),
            },
            Request::Diff { a, b } => match self.diff(a, b) {
                Ok(output) => {
                    let mut w = json::Writer::object();
                    w.field_bool("ok", true);
                    w.field_str("output", &output);
                    reply(&mut writer, &w.finish());
                }
                Err(e) => reply(&mut writer, &error_line(&e)),
            },
            Request::Cancel { job } => match self.cancel(job) {
                Ok(line) => reply(&mut writer, &line),
                Err(e) => reply(&mut writer, &error_line(&e)),
            },
            Request::Stats => reply(&mut writer, &self.stats_line()),
            Request::Metrics => reply(&mut writer, &self.metrics_line()),
            Request::Lease {
                reconnects,
                backoff_ns,
            } => reply(&mut writer, &self.lease_line(reconnects, backoff_ns)),
            Request::Complete { lease, record } => {
                reply(&mut writer, &self.complete_line(lease, &record));
            }
            Request::Ping => {
                let mut w = json::Writer::object();
                w.field_bool("ok", true);
                w.field_bool("pong", true);
                reply(&mut writer, &w.finish());
            }
            Request::Shutdown => {
                match self.shutdown() {
                    Ok(()) => {
                        let mut w = json::Writer::object();
                        w.field_bool("ok", true);
                        w.field_bool("drained", true);
                        reply(&mut writer, &w.finish());
                    }
                    Err(e) => reply(&mut writer, &error_line(&e)),
                }
                self.done_serving.store(true, Ordering::SeqCst);
                // Unblock the accept loop so `serve` can return.
                let _ = Stream::connect(wake);
            }
        }
    }
}

/// Renders a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("trial panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("trial panicked: {s}")
    } else {
        "trial panicked".to_string()
    }
}
