//! A blocking client for the daemon's wire protocol: one connection,
//! one request, line-delimited JSON back.
//!
//! Every method returns [`ProtoError`], which splits failures by what
//! the caller should do: [`ProtoError::is_retryable`] is true for a
//! daemon that is unreachable or draining (back off and try again)
//! and false for malformed traffic or refused requests (give up).
//! `bichrome work`'s reconnect loop is built directly on this split.

use crate::net::{Addr, Stream};
use crate::proto::{Format, ProtoError, Request};
use bichrome_store::json::Value;
use std::io::{BufRead, BufReader, Write};

/// A handle on a daemon address. Stateless — every call dials a
/// fresh connection, so one `Client` may be shared freely.
#[derive(Debug, Clone)]
pub struct Client {
    addr: Addr,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: Addr) -> Client {
        Client { addr }
    }

    /// Sends one request and returns the reader positioned after it,
    /// plus the first (decoded) response line.
    fn request(&self, req: &Request) -> Result<(BufReader<Stream>, Value), ProtoError> {
        let mut conn = Stream::connect(&self.addr)
            .map_err(|e| ProtoError::Unreachable(format!("connecting {}: {e}", self.addr)))?;
        writeln!(conn, "{}", req.encode())
            .and_then(|()| conn.flush())
            .map_err(|e| ProtoError::Unreachable(format!("send: {e}")))?;
        let mut reader = BufReader::new(conn);
        let first = read_value(&mut reader)?.ok_or(ProtoError::Unreachable(
            "daemon closed the connection".into(),
        ))?;
        Ok((reader, first))
    }

    /// Sends one request expecting a single `{"ok":...}` line.
    fn roundtrip(&self, req: &Request) -> Result<Value, ProtoError> {
        let (_, v) = self.request(req)?;
        check_ok(v)
    }

    /// True if a daemon answers at this address.
    pub fn ping(&self) -> bool {
        self.roundtrip(&Request::Ping).is_ok()
    }

    /// Submits inline campaign TOML; returns the job id.
    ///
    /// # Errors
    ///
    /// Transport failures and daemon-side rejections, typed.
    pub fn submit(&self, campaign_toml: &str) -> Result<u64, ProtoError> {
        let v = self.roundtrip(&Request::Submit {
            campaign: campaign_toml.to_string(),
        })?;
        field_u64(&v, "job")
    }

    /// One status snapshot for `job`.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown job ids.
    pub fn status(&self, job: u64) -> Result<Value, ProtoError> {
        self.roundtrip(&Request::Status { job })
    }

    /// Every job the daemon knows, oldest first.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn jobs(&self) -> Result<Vec<Value>, ProtoError> {
        let v = self.roundtrip(&Request::Jobs)?;
        match v.as_object().and_then(|o| o.get("jobs")) {
            Some(Value::Array(items)) => Ok(items.clone()),
            _ => Err(ProtoError::Malformed("malformed jobs response".into())),
        }
    }

    /// Streams `job`'s progress, invoking `on_event` per `trial`
    /// event, until the `end` event — which is returned.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown job ids.
    pub fn watch(&self, job: u64, mut on_event: impl FnMut(&Value)) -> Result<Value, ProtoError> {
        let (mut reader, ack) = self.request(&Request::Watch { job })?;
        check_ok(ack)?;
        while let Some(event) = read_value(&mut reader)? {
            let kind = event
                .as_object()
                .and_then(|o| o.get("event"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            if kind == "end" {
                return Ok(event);
            }
            on_event(&event);
        }
        Err(ProtoError::Unreachable(
            "watch stream ended without an end event".into(),
        ))
    }

    /// Renders a report of one finished job (`Some(id)`) or of the
    /// daemon's whole store (`None`).
    ///
    /// # Errors
    ///
    /// Transport failures, unknown/unfinished jobs.
    pub fn report(&self, job: Option<u64>, format: Format) -> Result<String, ProtoError> {
        let v = self.roundtrip(&Request::Report { job, format })?;
        field_str(&v, "output")
    }

    /// Baseline-relative diff of two finished jobs.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown/unfinished jobs.
    pub fn diff(&self, a: u64, b: u64) -> Result<String, ProtoError> {
        let v = self.roundtrip(&Request::Diff { a, b })?;
        field_str(&v, "output")
    }

    /// Cooperatively cancels a job.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown job ids.
    pub fn cancel(&self, job: u64) -> Result<(), ProtoError> {
        self.roundtrip(&Request::Cancel { job }).map(|_| ())
    }

    /// Daemon-wide counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&self) -> Result<Value, ProtoError> {
        self.roundtrip(&Request::Stats)
    }

    /// The daemon's process-wide observability registry — the same
    /// registry its `GET /metrics` endpoint serves, as a JSON object
    /// (`{"counters":{...},"gauges":{...},"histograms":{...}}`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&self) -> Result<Value, ProtoError> {
        let v = self.roundtrip(&Request::Metrics)?;
        v.as_object()
            .and_then(|o| o.get("metrics"))
            .cloned()
            .ok_or(ProtoError::Malformed("malformed metrics response".into()))
    }

    /// Asks the daemon to drain, checkpoint, and exit; returns once
    /// it has (the daemon responds *after* the drain completes).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&self) -> Result<(), ProtoError> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }

    /// Asks for one trial to compute (the remote-worker pull).
    ///
    /// # Errors
    ///
    /// Transport failures and malformed descriptors.
    pub fn lease(&self) -> Result<LeaseGrant, ProtoError> {
        self.lease_reporting(0, 0)
    }

    /// [`Client::lease`] carrying the worker's self-healing telemetry
    /// since its last accepted request: `reconnects` outages survived
    /// and `backoff_ns` cumulative backoff slept. The daemon folds
    /// both into its metrics registry
    /// (`bichrome_worker_reconnects_total`,
    /// `bichrome_worker_backoff_nanos`), so fleet-wide reconnect
    /// behaviour shows up in `bichrome stats` without a separate
    /// reporting channel.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed descriptors.
    pub fn lease_reporting(
        &self,
        reconnects: u64,
        backoff_ns: u64,
    ) -> Result<LeaseGrant, ProtoError> {
        let v = self.roundtrip(&Request::Lease {
            reconnects,
            backoff_ns,
        })?;
        let obj = v
            .as_object()
            .ok_or(ProtoError::Malformed("malformed lease response".into()))?;
        if matches!(obj.get("stop"), Some(Value::Bool(true))) {
            return Ok(LeaseGrant::Stop);
        }
        if matches!(obj.get("idle"), Some(Value::Bool(true))) {
            return Ok(LeaseGrant::Idle);
        }
        let seed_text = field_str(&v, "seed")?;
        Ok(LeaseGrant::Trial(TrialLease {
            lease: field_u64(&v, "lease")?,
            protocol: field_str(&v, "protocol")?,
            graph: field_str(&v, "graph")?,
            partitioner: field_str(&v, "partitioner")?,
            seed: seed_text.parse().map_err(|_| {
                ProtoError::Malformed(format!("lease seed {seed_text:?} is not a u64"))
            })?,
            transport: field_str(&v, "transport")?,
            // Absent on the wire (the overwhelmingly common case)
            // means the fault-free plan.
            fault: obj
                .get("fault")
                .and_then(Value::as_str)
                .unwrap_or("none")
                .to_string(),
        }))
    }

    /// Returns a leased trial's computed record (the `TrialRecord`
    /// JSON). `Ok(false)` means the daemon discarded it — the lease
    /// had already expired and the trial went to another worker.
    ///
    /// # Errors
    ///
    /// Transport failures and rejected (re-queued) records.
    pub fn complete(&self, lease: u64, record_json: &str) -> Result<bool, ProtoError> {
        let v = self.roundtrip(&Request::Complete {
            lease,
            record: record_json.to_string(),
        })?;
        let obj = v
            .as_object()
            .ok_or(ProtoError::Malformed("malformed complete response".into()))?;
        Ok(matches!(obj.get("accepted"), Some(Value::Bool(true))))
    }
}

/// The daemon's answer to [`Client::lease`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseGrant {
    /// A trial to compute (return it via [`Client::complete`]).
    Trial(TrialLease),
    /// Nothing queued right now — poll again shortly.
    Idle,
    /// The daemon is draining; the worker should exit.
    Stop,
}

/// One leased trial descriptor: the [`TrialKey`] fields plus the
/// session transport and fault plan the campaign asked for and the
/// lease token to complete against.
///
/// [`TrialKey`]: bichrome_store::TrialKey
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialLease {
    /// Token for [`Client::complete`].
    pub lease: u64,
    /// Registry protocol key.
    pub protocol: String,
    /// Graph spec string.
    pub graph: String,
    /// Partitioner label.
    pub partitioner: String,
    /// Trial seed.
    pub seed: u64,
    /// Transport name (`inproc` / `pipe` / `tcp`).
    pub transport: String,
    /// Fault-plan spec to inject under the trial's session (`"none"`
    /// unless the campaign declared chaos). Faults are recovered
    /// below the meter, so the record is bit-identical either way —
    /// this field makes the worker reproduce the daemon's exact
    /// execution, chaos included.
    pub fault: String,
}

/// Reads and parses one response line (`None` on clean EOF).
fn read_value(reader: &mut BufReader<Stream>) -> Result<Option<Value>, ProtoError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ProtoError::Unreachable(format!("recv: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    Value::parse(line.trim())
        .map(Some)
        .map_err(ProtoError::Malformed)
}

/// Unwraps `{"ok":true,...}` or surfaces the daemon's error, typed
/// by the optional machine-readable `kind` tag.
fn check_ok(v: Value) -> Result<Value, ProtoError> {
    let obj = v
        .as_object()
        .ok_or(ProtoError::Malformed("malformed response".into()))?;
    match obj.get("ok") {
        Some(Value::Bool(true)) => Ok(v),
        _ => {
            let msg = obj
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("malformed response")
                .to_string();
            match obj.get("kind").and_then(Value::as_str) {
                Some("draining") => Err(ProtoError::Draining(msg)),
                _ => Err(ProtoError::Rejected(msg)),
            }
        }
    }
}

fn field_u64(v: &Value, field: &str) -> Result<u64, ProtoError> {
    v.as_object()
        .and_then(|o| o.get(field))
        .and_then(Value::as_u64)
        .ok_or(ProtoError::Malformed(format!(
            "response has no integer {field:?}"
        )))
}

fn field_str(v: &Value, field: &str) -> Result<String, ProtoError> {
    v.as_object()
        .and_then(|o| o.get(field))
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or(ProtoError::Malformed(format!(
            "response has no string {field:?}"
        )))
}
