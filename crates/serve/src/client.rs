//! A blocking client for the daemon's wire protocol: one connection,
//! one request, line-delimited JSON back.

use crate::net::{Addr, Stream};
use crate::proto::{Format, Request};
use bichrome_store::json::Value;
use std::io::{BufRead, BufReader, Write};

/// A handle on a daemon address. Stateless — every call dials a
/// fresh connection, so one `Client` may be shared freely.
#[derive(Debug, Clone)]
pub struct Client {
    addr: Addr,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: Addr) -> Client {
        Client { addr }
    }

    /// Sends one request and returns the reader positioned after it,
    /// plus the first (decoded) response line.
    fn request(&self, req: &Request) -> Result<(BufReader<Stream>, Value), String> {
        let mut conn =
            Stream::connect(&self.addr).map_err(|e| format!("connecting {}: {e}", self.addr))?;
        writeln!(conn, "{}", req.encode()).map_err(|e| format!("send: {e}"))?;
        conn.flush().map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(conn);
        let first = read_value(&mut reader)?.ok_or("daemon closed the connection")?;
        Ok((reader, first))
    }

    /// Sends one request expecting a single `{"ok":...}` line.
    fn roundtrip(&self, req: &Request) -> Result<Value, String> {
        let (_, v) = self.request(req)?;
        check_ok(v)
    }

    /// True if a daemon answers at this address.
    pub fn ping(&self) -> bool {
        self.roundtrip(&Request::Ping).is_ok()
    }

    /// Submits inline campaign TOML; returns the job id.
    ///
    /// # Errors
    ///
    /// Transport failures and daemon-side rejections, rendered.
    pub fn submit(&self, campaign_toml: &str) -> Result<u64, String> {
        let v = self.roundtrip(&Request::Submit {
            campaign: campaign_toml.to_string(),
        })?;
        field_u64(&v, "job")
    }

    /// One status snapshot for `job`.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown job ids.
    pub fn status(&self, job: u64) -> Result<Value, String> {
        self.roundtrip(&Request::Status { job })
    }

    /// Every job the daemon knows, oldest first.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn jobs(&self) -> Result<Vec<Value>, String> {
        let v = self.roundtrip(&Request::Jobs)?;
        match v.as_object().and_then(|o| o.get("jobs")) {
            Some(Value::Array(items)) => Ok(items.clone()),
            _ => Err("malformed jobs response".to_string()),
        }
    }

    /// Streams `job`'s progress, invoking `on_event` per `trial`
    /// event, until the `end` event — which is returned.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown job ids.
    pub fn watch(&self, job: u64, mut on_event: impl FnMut(&Value)) -> Result<Value, String> {
        let (mut reader, ack) = self.request(&Request::Watch { job })?;
        check_ok(ack)?;
        while let Some(event) = read_value(&mut reader)? {
            let kind = event
                .as_object()
                .and_then(|o| o.get("event"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            if kind == "end" {
                return Ok(event);
            }
            on_event(&event);
        }
        Err("watch stream ended without an end event".to_string())
    }

    /// Renders a report of one finished job (`Some(id)`) or of the
    /// daemon's whole store (`None`).
    ///
    /// # Errors
    ///
    /// Transport failures, unknown/unfinished jobs.
    pub fn report(&self, job: Option<u64>, format: Format) -> Result<String, String> {
        let v = self.roundtrip(&Request::Report { job, format })?;
        field_str(&v, "output")
    }

    /// Baseline-relative diff of two finished jobs.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown/unfinished jobs.
    pub fn diff(&self, a: u64, b: u64) -> Result<String, String> {
        let v = self.roundtrip(&Request::Diff { a, b })?;
        field_str(&v, "output")
    }

    /// Cooperatively cancels a job.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown job ids.
    pub fn cancel(&self, job: u64) -> Result<(), String> {
        self.roundtrip(&Request::Cancel { job }).map(|_| ())
    }

    /// Daemon-wide counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&self) -> Result<Value, String> {
        self.roundtrip(&Request::Stats)
    }

    /// The daemon's process-wide observability registry — the same
    /// registry its `GET /metrics` endpoint serves, as a JSON object
    /// (`{"counters":{...},"gauges":{...},"histograms":{...}}`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&self) -> Result<Value, String> {
        let v = self.roundtrip(&Request::Metrics)?;
        v.as_object()
            .and_then(|o| o.get("metrics"))
            .cloned()
            .ok_or("malformed metrics response".to_string())
    }

    /// Asks the daemon to drain, checkpoint, and exit; returns once
    /// it has (the daemon responds *after* the drain completes).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&self) -> Result<(), String> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }

    /// Asks for one trial to compute (the remote-worker pull).
    ///
    /// # Errors
    ///
    /// Transport failures and malformed descriptors.
    pub fn lease(&self) -> Result<LeaseGrant, String> {
        let v = self.roundtrip(&Request::Lease)?;
        let obj = v.as_object().ok_or("malformed lease response")?;
        if matches!(obj.get("stop"), Some(Value::Bool(true))) {
            return Ok(LeaseGrant::Stop);
        }
        if matches!(obj.get("idle"), Some(Value::Bool(true))) {
            return Ok(LeaseGrant::Idle);
        }
        let seed_text = field_str(&v, "seed")?;
        Ok(LeaseGrant::Trial(TrialLease {
            lease: field_u64(&v, "lease")?,
            protocol: field_str(&v, "protocol")?,
            graph: field_str(&v, "graph")?,
            partitioner: field_str(&v, "partitioner")?,
            seed: seed_text
                .parse()
                .map_err(|_| format!("lease seed {seed_text:?} is not a u64"))?,
            transport: field_str(&v, "transport")?,
        }))
    }

    /// Returns a leased trial's computed record (the `TrialRecord`
    /// JSON). `Ok(false)` means the daemon discarded it — the lease
    /// had already expired and the trial went to another worker.
    ///
    /// # Errors
    ///
    /// Transport failures and rejected (re-queued) records.
    pub fn complete(&self, lease: u64, record_json: &str) -> Result<bool, String> {
        let v = self.roundtrip(&Request::Complete {
            lease,
            record: record_json.to_string(),
        })?;
        let obj = v.as_object().ok_or("malformed complete response")?;
        Ok(matches!(obj.get("accepted"), Some(Value::Bool(true))))
    }
}

/// The daemon's answer to [`Client::lease`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseGrant {
    /// A trial to compute (return it via [`Client::complete`]).
    Trial(TrialLease),
    /// Nothing queued right now — poll again shortly.
    Idle,
    /// The daemon is draining; the worker should exit.
    Stop,
}

/// One leased trial descriptor: the [`TrialKey`] fields plus the
/// session transport the campaign asked for and the lease token to
/// complete against.
///
/// [`TrialKey`]: bichrome_store::TrialKey
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialLease {
    /// Token for [`Client::complete`].
    pub lease: u64,
    /// Registry protocol key.
    pub protocol: String,
    /// Graph spec string.
    pub graph: String,
    /// Partitioner label.
    pub partitioner: String,
    /// Trial seed.
    pub seed: u64,
    /// Transport name (`inproc` / `pipe` / `tcp`).
    pub transport: String,
}

/// Reads and parses one response line (`None` on clean EOF).
fn read_value(reader: &mut BufReader<Stream>) -> Result<Option<Value>, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    Value::parse(line.trim()).map(Some)
}

/// Unwraps `{"ok":true,...}` or surfaces the daemon's error.
fn check_ok(v: Value) -> Result<Value, String> {
    let obj = v.as_object().ok_or("malformed response")?;
    match obj.get("ok") {
        Some(Value::Bool(true)) => Ok(v),
        _ => Err(obj
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("malformed response")
            .to_string()),
    }
}

fn field_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.as_object()
        .and_then(|o| o.get(field))
        .and_then(Value::as_u64)
        .ok_or(format!("response has no integer {field:?}"))
}

fn field_str(v: &Value, field: &str) -> Result<String, String> {
    v.as_object()
        .and_then(|o| o.get(field))
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or(format!("response has no string {field:?}"))
}
