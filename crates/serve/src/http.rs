//! A minimal std-only HTTP/1.1 front-end for the observability
//! registry: `GET /metrics` answers with
//! [`bichrome_obs::render_prometheus`] — the Prometheus text
//! exposition format — and everything else gets a 404. One thread per
//! connection, `Connection: close`, no keep-alive, no TLS: just
//! enough HTTP for `prometheus` scrape configs, `curl`, and bash's
//! `/dev/tcp`.
//!
//! This is deliberately not part of the line-JSON wire protocol
//! ([`crate::proto`]): scrapers speak HTTP, clients speak the daemon
//! socket, and the two front-ends read the same process-wide
//! registry.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `GET /metrics` from
/// a detached background thread for the life of the process. Returns
/// the effective local address — with port 0 that is where the OS put
/// the listener, which is what the CLI prints for scrapers to find.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn_metrics_http(addr: &str) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            thread::spawn(move || {
                let _ = handle(stream);
            });
        }
    });
    Ok(local)
}

/// Answers one request on `stream` and closes it.
fn handle(stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; nothing in them changes the answer.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?"))
    {
        ("200 OK", bichrome_obs::render_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let mut writer = stream;
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// One blocking request against the endpoint; returns
    /// `(status line, body)`.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
        conn.flush().expect("flush");
        let mut raw = String::new();
        conn.read_to_string(&mut raw).expect("recv");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    #[test]
    fn metrics_endpoint_serves_parseable_prometheus_text() {
        bichrome_obs::counter("bichrome_http_endpoint_test_total").add(7);
        let addr = spawn_metrics_http("127.0.0.1:0").expect("bind");
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        // Every line is a `# TYPE name kind` comment or a
        // `sample value` pair with a numeric value — the Prometheus
        // text format contract scrapers rely on.
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut words = rest.split_whitespace();
                assert!(words.next().is_some(), "family name: {line}");
                let kind = words.next().expect("family kind");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "kind: {line}"
                );
            } else {
                let (_series, value) = line.rsplit_once(' ').expect("sample line");
                assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
            }
        }
        assert!(
            body.contains("# TYPE bichrome_http_endpoint_test_total counter"),
            "{body}"
        );
        assert!(
            body.contains("bichrome_http_endpoint_test_total 7"),
            "{body}"
        );
    }

    #[test]
    fn unknown_paths_get_a_404() {
        let addr = spawn_metrics_http("127.0.0.1:0").expect("bind");
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
    }
}
