//! Transport for the daemon: a Unix-domain or TCP listener with a
//! unified [`Stream`], built on `std::net` / `std::os::unix` only —
//! the protocol is plain line-delimited text, so blocking sockets and
//! a thread per connection are all the machinery required.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Where the daemon listens (or where a client connects).
///
/// Rendered / parsed as `unix:<path>` or `tcp:<host>:<port>`; a bare
/// string containing `/` is taken as a Unix socket path, anything
/// else with a `:` as a TCP address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP socket (`host:port`).
    Tcp(String),
}

impl Addr {
    /// Parses an address spec.
    ///
    /// # Errors
    ///
    /// Returns a description of why the spec is not an address.
    pub fn parse(spec: &str) -> Result<Addr, String> {
        if let Some(rest) = spec.strip_prefix("unix:") {
            return Ok(Addr::Unix(PathBuf::from(rest)));
        }
        if let Some(rest) = spec.strip_prefix("tcp:") {
            return Ok(Addr::Tcp(rest.to_string()));
        }
        if spec.contains('/') {
            return Ok(Addr::Unix(PathBuf::from(spec)));
        }
        if spec.contains(':') {
            return Ok(Addr::Tcp(spec.to_string()));
        }
        Err(format!(
            "address {spec:?} is neither unix:<path> (or a path containing '/') \
             nor tcp:<host>:<port>"
        ))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bound listener of either family.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener plus its socket path (kept to render the
    /// effective address and to unlink on drop).
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`. A stale Unix socket file (a previous daemon that
    /// died without cleanup) is removed first; `tcp:host:0` binds an
    /// ephemeral port — read it back with [`Listener::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Addr::Tcp(spec) => Ok(Listener::Tcp(TcpListener::bind(spec)?)),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// Propagates the accept failure.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
        }
    }

    /// The effective address (with the real port for `tcp:host:0`).
    pub fn local_addr(&self) -> Addr {
        match self {
            Listener::Unix(_, path) => Addr::Unix(path.clone()),
            Listener::Tcp(l) => Addr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".to_string()),
            ),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Dials `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &Addr) -> io::Result<Stream> {
        match addr {
            Addr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            Addr::Tcp(spec) => Ok(Stream::Tcp(TcpStream::connect(spec)?)),
        }
    }

    /// An independently owned handle to the same connection (read on
    /// one, write on the other).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `try_clone` failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Arms (or with `None` disarms) both the read and write timeout
    /// on this connection. A blocked read/write past the deadline
    /// fails with `WouldBlock`/`TimedOut` instead of pinning its
    /// thread forever — the daemon sets this on every accepted
    /// connection ([`crate::DaemonConfig::io_timeout`]) so a silent
    /// or severed peer costs a handler thread only briefly.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure (`timeout` of zero is
    /// rejected by the OS; pass `None` to disable).
    pub fn set_timeouts(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            Stream::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_specs_round_trip() {
        assert_eq!(
            Addr::parse("unix:/tmp/x.sock").expect("parses"),
            Addr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Addr::parse("/tmp/x.sock").expect("bare path"),
            Addr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:7777").expect("parses"),
            Addr::Tcp("127.0.0.1:7777".to_string())
        );
        assert_eq!(
            Addr::parse("127.0.0.1:7777").expect("bare host:port"),
            Addr::Tcp("127.0.0.1:7777".to_string())
        );
        assert!(Addr::parse("nonsense").is_err());
        assert_eq!(
            Addr::parse("unix:/tmp/x.sock").expect("parses").to_string(),
            "unix:/tmp/x.sock"
        );
    }

    #[test]
    fn unix_listener_cleans_up_and_replaces_stale_sockets() {
        let path =
            std::env::temp_dir().join(format!("bichrome-net-test-{}.sock", std::process::id()));
        let addr = Addr::Unix(path.clone());
        let l = Listener::bind(&addr).expect("bind");
        assert!(path.exists());
        drop(l);
        assert!(!path.exists(), "socket file unlinked on drop");
        // A stale file (daemon killed hard) must not block a rebind.
        std::fs::write(&path, b"stale").expect("plant stale file");
        let l = Listener::bind(&addr).expect("rebind over stale");
        drop(l);
    }

    #[test]
    fn tcp_round_trip_on_ephemeral_port() {
        let l = Listener::bind(&Addr::parse("tcp:127.0.0.1:0").expect("parse")).expect("bind");
        let addr = l.local_addr();
        let t = std::thread::spawn(move || {
            let mut conn = l.accept().expect("accept");
            let mut buf = [0u8; 4];
            conn.read_exact(&mut buf).expect("read");
            conn.write_all(&buf).expect("echo");
        });
        let mut c = Stream::connect(&addr).expect("connect");
        c.write_all(b"ping").expect("send");
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).expect("recv");
        assert_eq!(&buf, b"ping");
        t.join().expect("server thread");
    }
}
