//! `bichrome-cli` — the `bichrome` command-line front-end.
//!
//! Campaigns become *files*: a `[campaign]` TOML table declaring the
//! protocol / graph / size / partitioner / seed axes (parsed onto the
//! runner's `FromStr` surfaces) plus an optional persistent store.
//! Together with `bichrome-store` this turns the one-shot experiment
//! binaries into resumable, incremental, shareable workloads:
//!
//! ```text
//! bichrome run grid.toml --store results/     # computes + persists
//! ^C                                          # killed partway…
//! bichrome resume grid.toml --store results/  # …finishes the rest
//! bichrome run grid.toml --store results/     # warm: computes 0 trials
//! bichrome report results/ --format csv       # re-aggregate, no execution
//! bichrome diff baseline/ candidate/          # cross-run comparison
//! bichrome registry                           # the 9 protocol keys
//! ```
//!
//! Everything is implemented as library functions returning output
//! text (see [`commands::dispatch`]), so the whole surface is unit-
//! and integration-tested without spawning processes; `main` is a
//! four-line shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;

pub use bichrome_runner::{campaign_file, toml, CampaignFile};
pub use commands::{dispatch, USAGE};
