//! The `bichrome` subcommands, implemented as pure
//! `args in → output text out` functions so every code path is unit
//! testable without spawning a process.

use crate::campaign_file::CampaignFile;
use bichrome_runner::table::Table;
use bichrome_runner::{registry, CampaignReport};
use bichrome_store::Store;
use std::fmt::Write as _;

/// The usage text (`bichrome help`).
pub const USAGE: &str = "\
bichrome — persistent, resumable campaign runs over every protocol in the registry

USAGE:
    bichrome run <campaign.toml> [--store <dir>] [--format text|json|csv] [--serial]
        Run the declared grid. With a store (flag or `store = ...` in the
        file), already-computed trials are skipped and fresh records are
        flushed as workers finish.
    bichrome resume <campaign.toml> [--store <dir>]
        Alias of `run` that *requires* a store — use after a killed run.
    bichrome report <store-dir> [--format text|json|csv]
        Re-aggregate a CampaignReport purely from a store (no execution).
    bichrome diff <store-a> <store-b>
        Compare mean bits/rounds of the cells two stores share.
    bichrome registry
        List every protocol key and its guarantee.
    bichrome help
        Print this text.
";

/// Dispatches one invocation (argv without the program name).
///
/// # Errors
///
/// Returns the message to print to stderr (exit code 1).
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        None | Some((&"help", _)) | Some((&"--help", _)) | Some((&"-h", _)) => {
            Ok(USAGE.to_string())
        }
        Some((&"run", rest)) => run(rest, false),
        Some((&"resume", rest)) => run(rest, true),
        Some((&"report", rest)) => report(rest),
        Some((&"diff", rest)) => diff(rest),
        Some((&"registry", [])) => Ok(registry_listing()),
        Some((&"registry", _)) => Err("registry takes no arguments".to_string()),
        Some((cmd, _)) => Err(format!("unknown command {cmd:?}\n\n{USAGE}")),
    }
}

/// Output format of `run` / `report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable table (plus `ExecStats` after a run).
    Text,
    /// The full `CampaignReport` JSON.
    Json,
    /// The pinned per-cell CSV.
    Csv,
}

/// The flags shared by the subcommands: positionals, `--store`,
/// `--format`, `--serial`.
type ParsedFlags<'a> = (Vec<&'a str>, Option<&'a str>, Format, bool);

/// Splits `args` into positionals and recognized flags.
fn parse_flags<'a>(args: &[&'a str], allow: &[&str]) -> Result<ParsedFlags<'a>, String> {
    let mut positional = Vec::new();
    let mut store = None;
    let mut format = Format::Text;
    let mut serial = false;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        let check = |flag: &str| -> Result<(), String> {
            if allow.contains(&flag) {
                Ok(())
            } else {
                Err(format!("flag {flag} is not valid for this command"))
            }
        };
        match arg {
            "--store" => {
                check("--store")?;
                store = Some(*it.next().ok_or("--store needs a directory argument")?);
            }
            "--format" => {
                check("--format")?;
                format = match *it.next().ok_or("--format needs text|json|csv")? {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format {other:?} (text|json|csv)")),
                };
            }
            "--serial" => {
                check("--serial")?;
                serial = true;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            pos => positional.push(pos),
        }
    }
    Ok((positional, store, format, serial))
}

/// `bichrome run` / `bichrome resume`.
fn run(args: &[&str], require_store: bool) -> Result<String, String> {
    let (pos, store_flag, format, serial) =
        parse_flags(args, &["--store", "--format", "--serial"])?;
    let [path] = pos.as_slice() else {
        return Err("expected exactly one campaign file argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = CampaignFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if require_store && file.store_path(store_flag).is_none() {
        return Err(
            "resume needs a store: pass --store <dir> or set `store = ...` in the campaign file"
                .to_string(),
        );
    }
    let mut campaign = file.to_campaign(store_flag);
    if serial {
        campaign = campaign.parallel(false);
    }
    let (report, stats) = campaign
        .try_run_with_stats()
        .map_err(|e| format!("campaign store: {e}"))?;
    match format {
        Format::Json => Ok(report.to_json()),
        Format::Csv => Ok(report.to_csv()),
        Format::Text => {
            let mut out = report.render_table();
            writeln!(out, "{stats}").expect("string write");
            if let Some(store) = file.store_path(store_flag) {
                writeln!(out, "store: {store}").expect("string write");
            }
            Ok(out)
        }
    }
}

/// `bichrome report`.
fn report(args: &[&str]) -> Result<String, String> {
    let (pos, _, format, _) = parse_flags(args, &["--format"])?;
    let [dir] = pos.as_slice() else {
        return Err("expected exactly one store directory argument".to_string());
    };
    let store = Store::open_existing(*dir).map_err(|e| e.to_string())?;
    let report = CampaignReport::from_store(&store)?;
    match format {
        Format::Json => Ok(report.to_json()),
        Format::Csv => Ok(report.to_csv()),
        Format::Text => {
            let mut out = report.render_table();
            if let Some(salvage) = store.salvage() {
                writeln!(out, "warning: {salvage}").expect("string write");
            }
            Ok(out)
        }
    }
}

/// `bichrome diff`: baseline-relative comparison of two stores — the
/// first store is the baseline, ratios are `b / a`.
fn diff(args: &[&str]) -> Result<String, String> {
    let (pos, _, _, _) = parse_flags(args, &[])?;
    let [dir_a, dir_b] = pos.as_slice() else {
        return Err("expected exactly two store directory arguments".to_string());
    };
    let load = |dir: &str| -> Result<CampaignReport, String> {
        let store = Store::open_existing(dir).map_err(|e| e.to_string())?;
        CampaignReport::from_store(&store).map_err(|e| format!("{dir}: {e}"))
    };
    let a = load(dir_a)?;
    let b = load(dir_b)?;
    let mut t = Table::new(&[
        "protocol",
        "graph",
        "partitioner",
        "bits a",
        "bits b",
        "bits b/a",
        "rounds b/a",
        "valid a",
        "valid b",
    ]);
    let mut shared = 0usize;
    let mut only_a = Vec::new();
    for cell in &a.cells {
        let Some(twin) = b.cells.iter().find(|c| {
            c.protocol == cell.protocol
                && c.spec == cell.spec
                && c.partitioner_label() == cell.partitioner_label()
        }) else {
            only_a.push(format!("{} on {}", cell.protocol, cell.spec));
            continue;
        };
        shared += 1;
        let (sa, sb) = (cell.summary(), twin.summary());
        t.row(&[
            &cell.protocol,
            &cell.spec.to_string(),
            &cell.partitioner_label(),
            &format!("{:.1}", sa.total_bits.mean),
            &format!("{:.1}", sb.total_bits.mean),
            &ratio_label(sb.total_bits.mean, sa.total_bits.mean),
            &ratio_label(sb.rounds.mean, sa.rounds.mean),
            &format!("{}/{}", sa.valid, sa.trials),
            &format!("{}/{}", sb.valid, sb.trials),
        ]);
    }
    let only_b: Vec<String> = b
        .cells
        .iter()
        .filter(|c| {
            !a.cells.iter().any(|d| {
                d.protocol == c.protocol
                    && d.spec == c.spec
                    && d.partitioner_label() == c.partitioner_label()
            })
        })
        .map(|c| format!("{} on {}", c.protocol, c.spec))
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "diff {dir_a} (a) vs {dir_b} (b): {shared} shared cell(s)"
    )
    .expect("string write");
    if shared > 0 {
        out.push_str(&t.render());
        out.push('\n');
    }
    for (label, cells) in [("only in a", only_a), ("only in b", only_b)] {
        if !cells.is_empty() {
            writeln!(out, "{label}: {}", cells.join(", ")).expect("string write");
        }
    }
    Ok(out)
}

/// A `x.xx×` ratio cell: `1.00x` when both sides are zero-mean, `∞`
/// when only the baseline side is.
fn ratio_label(b: f64, a: f64) -> String {
    if a == 0.0 && b == 0.0 {
        "1.00x".to_string()
    } else if a == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}x", b / a)
    }
}

/// `bichrome registry`.
fn registry_listing() -> String {
    let reg = registry();
    let mut t = Table::new(&["key", "guarantee"]);
    for proto in reg.iter() {
        t.row(&[proto.name(), proto.describe()]);
    }
    format!(
        "{}\n{} protocols · use any key on a campaign's protocol axis\n",
        t.render(),
        reg.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch_strs(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch_strs(&[]).expect("usage").contains("USAGE"));
        assert!(dispatch_strs(&["help"]).expect("usage").contains("resume"));
        let err = dispatch_strs(&["frobnicate"]).expect_err("unknown");
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn registry_lists_all_protocols() {
        let out = dispatch_strs(&["registry"]).expect("listing");
        for key in registry().names() {
            assert!(out.contains(key), "missing {key}");
        }
        assert!(out.contains("9 protocols"));
    }

    #[test]
    fn flag_validation() {
        assert!(dispatch_strs(&["run"]).is_err(), "missing file");
        assert!(
            dispatch_strs(&["report", "x", "--serial"]).is_err(),
            "--serial is not a report flag"
        );
        assert!(dispatch_strs(&["run", "x", "--format", "yaml"])
            .expect_err("bad format")
            .contains("yaml"),);
        assert!(dispatch_strs(&["diff", "only-one"]).is_err());
        assert!(dispatch_strs(&["report", "/no/such/store"])
            .expect_err("missing store")
            .contains("not a bichrome store"));
    }
}
