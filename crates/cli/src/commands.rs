//! The `bichrome` subcommands, implemented as pure
//! `args in → output text out` functions so every code path is unit
//! testable without spawning a process.

use bichrome_runner::table::Table;
use bichrome_runner::{
    compute_trial, diff_reports, registry, CampaignFile, CampaignReport, FaultPlan, InstanceCache,
    TransportKind,
};
use bichrome_serve::json::Value;
use bichrome_serve::{Addr, Client, Daemon, DaemonConfig, LeaseGrant, Listener, ProtoError};
use bichrome_store::{Store, TrialKey};
use std::fmt::Write as _;
use std::time::Duration;

/// The usage text (`bichrome help`).
pub const USAGE: &str = "\
bichrome — persistent, resumable campaign runs over every protocol in the registry

USAGE:
    bichrome run <campaign.toml> [--store <dir>] [--format text|json|csv] [--serial]
                 [--transport inproc|pipe|tcp] [--trace-out <file>]
        Run the declared grid. With a store (flag or `store = ...` in the
        file), already-computed trials are skipped and fresh records are
        flushed as workers finish. --transport overrides the file's
        session wire (results are bit-identical on every transport).
        --trace-out records per-trial spans and writes a Chrome
        trace-event JSON file (load it at chrome://tracing or Perfetto);
        results are bit-identical with and without it.
    bichrome trace <campaign.toml> --out <file> [--store <dir>] [--serial]
                   [--transport inproc|pipe|tcp]
        Run the grid with span tracing on and write only the Chrome
        trace (the report still lands in the store, if one is set).
    bichrome resume <campaign.toml> [--store <dir>]
        Alias of `run` that *requires* a store — use after a killed run.
    bichrome report <store-dir> [--format text|json|csv]
        Re-aggregate a CampaignReport purely from a store (no execution).
    bichrome diff <store-a> <store-b>
        Compare mean bits/rounds of the cells two stores share.
    bichrome store merge <a> <b> <out>
        Union two stores into a new one; refuses conflicting records.
    bichrome registry
        List every protocol key and its guarantee.

  The daemon (many clients, one executor, one store):
    bichrome serve <store-dir> [--addr <addr>] [--workers <n>]
                   [--no-local-workers] [--lease-timeout <secs>]
                   [--http <host:port>]
        Run the campaign daemon until a `shutdown` request. The default
        address is unix:<store-dir>/daemon.sock; tcp:<host>:<port> works too
        (the effective address is printed to stderr at startup). With
        --no-local-workers the daemon only schedules: every trial waits
        for a remote worker's lease. --http additionally serves the
        process metrics registry as a Prometheus `GET /metrics`
        endpoint (the effective address is printed to stderr).
    bichrome work --connect <addr> [--max-retries <n>] [--backoff <ms>]
        Pull trials from a daemon, compute them locally, and stream the
        records back. Run any number of these wherever the daemon is
        reachable; one dying mid-trial costs only a lease timeout. An
        unreachable or restarting daemon is retried with capped
        exponential backoff (base --backoff ms, default 100, doubling
        to 64x; deterministic jitter) for up to --max-retries
        consecutive failures (default 50) before the worker gives up.
    bichrome submit <campaign.toml> --addr <addr> [--watch]
        Submit the declaration (sent inline) as a job; --watch streams
        its progress and exits with the final accounting.
    bichrome watch <job-id> --addr <addr>
        Stream a job's per-trial progress until it ends.
    bichrome jobs --addr <addr>
        List every job the daemon knows.
    bichrome cancel <job-id> --addr <addr>
        Cooperatively cancel a running job (completed trials persist).
    bichrome ping --addr <addr>
        Exit 0 if a daemon answers at the address.
    bichrome stats --addr <addr>
        Print the daemon's counters (cache, store, jobs, leases) plus
        lease-age and lease-latency percentiles.
    bichrome metrics --addr <addr>
        Print the daemon's full metrics registry: every counter, gauge,
        and histogram (with p50/p95/p99) — the same registry its
        `GET /metrics` endpoint exposes.
    bichrome shutdown --addr <addr>
        Drain in-flight jobs, checkpoint the store, stop the daemon.

    bichrome help
        Print this text.
";

/// Dispatches one invocation (argv without the program name).
///
/// # Errors
///
/// Returns the message to print to stderr (exit code 1).
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        None | Some((&"help", _)) | Some((&"--help", _)) | Some((&"-h", _)) => {
            Ok(USAGE.to_string())
        }
        Some((&"run", rest)) => run(rest, false),
        Some((&"resume", rest)) => run(rest, true),
        Some((&"trace", rest)) => trace(rest),
        Some((&"report", rest)) => report(rest),
        Some((&"diff", rest)) => diff(rest),
        Some((&"store", rest)) => store_cmd(rest),
        Some((&"serve", rest)) => serve(rest),
        Some((&"work", rest)) => work(rest),
        Some((&"submit", rest)) => submit(rest),
        Some((&"watch", rest)) => watch(rest),
        Some((&"jobs", rest)) => jobs(rest),
        Some((&"cancel", rest)) => cancel(rest),
        Some((&"ping", rest)) => ping(rest),
        Some((&"stats", rest)) => stats(rest),
        Some((&"metrics", rest)) => metrics(rest),
        Some((&"shutdown", rest)) => shutdown(rest),
        Some((&"registry", [])) => Ok(registry_listing()),
        Some((&"registry", _)) => Err("registry takes no arguments".to_string()),
        Some((cmd, _)) => Err(format!("unknown command {cmd:?}\n\n{USAGE}")),
    }
}

/// Output format of `run` / `report`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Format {
    /// Human-readable table (plus `ExecStats` after a run).
    #[default]
    Text,
    /// The full `CampaignReport` JSON.
    Json,
    /// The pinned per-cell CSV.
    Csv,
}

/// The flags shared by the subcommands.
#[derive(Debug, Default)]
struct Flags<'a> {
    positional: Vec<&'a str>,
    store: Option<&'a str>,
    format: Format,
    serial: bool,
    addr: Option<&'a str>,
    watch: bool,
    workers: usize,
    transport: Option<TransportKind>,
    connect: Option<&'a str>,
    no_local_workers: bool,
    lease_timeout: Option<u64>,
    max_retries: Option<u32>,
    backoff_ms: Option<u64>,
    trace_out: Option<&'a str>,
    out: Option<&'a str>,
    http: Option<&'a str>,
}

impl<'a> Flags<'a> {
    /// The `--addr` flag, parsed — required by the daemon-client
    /// subcommands.
    fn daemon_addr(&self) -> Result<Addr, String> {
        let spec = self
            .addr
            .ok_or("this command talks to a daemon: pass --addr <addr>")?;
        Addr::parse(spec)
    }
}

/// Splits `args` into positionals and recognized flags.
fn parse_flags<'a>(args: &[&'a str], allow: &[&str]) -> Result<Flags<'a>, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        let check = |flag: &str| -> Result<(), String> {
            if allow.contains(&flag) {
                Ok(())
            } else {
                Err(format!("flag {flag} is not valid for this command"))
            }
        };
        match arg {
            "--store" => {
                check("--store")?;
                flags.store = Some(*it.next().ok_or("--store needs a directory argument")?);
            }
            "--format" => {
                check("--format")?;
                flags.format = match *it.next().ok_or("--format needs text|json|csv")? {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format {other:?} (text|json|csv)")),
                };
            }
            "--serial" => {
                check("--serial")?;
                flags.serial = true;
            }
            "--addr" => {
                check("--addr")?;
                flags.addr = Some(*it.next().ok_or("--addr needs an address argument")?);
            }
            "--watch" => {
                check("--watch")?;
                flags.watch = true;
            }
            "--workers" => {
                check("--workers")?;
                let n = *it.next().ok_or("--workers needs a thread count")?;
                flags.workers = n
                    .parse()
                    .map_err(|_| format!("--workers {n:?} is not a number"))?;
            }
            "--transport" => {
                check("--transport")?;
                let name = *it.next().ok_or("--transport needs inproc|pipe|tcp")?;
                flags.transport = Some(name.parse()?);
            }
            "--connect" => {
                check("--connect")?;
                flags.connect = Some(*it.next().ok_or("--connect needs a daemon address")?);
            }
            "--no-local-workers" => {
                check("--no-local-workers")?;
                flags.no_local_workers = true;
            }
            "--lease-timeout" => {
                check("--lease-timeout")?;
                let secs = *it.next().ok_or("--lease-timeout needs seconds")?;
                flags.lease_timeout = Some(
                    secs.parse()
                        .map_err(|_| format!("--lease-timeout {secs:?} is not a number"))?,
                );
            }
            "--max-retries" => {
                check("--max-retries")?;
                let n = *it.next().ok_or("--max-retries needs a count")?;
                flags.max_retries = Some(
                    n.parse()
                        .map_err(|_| format!("--max-retries {n:?} is not a number"))?,
                );
            }
            "--backoff" => {
                check("--backoff")?;
                let ms = *it.next().ok_or("--backoff needs milliseconds")?;
                flags.backoff_ms = Some(
                    ms.parse()
                        .map_err(|_| format!("--backoff {ms:?} is not a number"))?,
                );
            }
            "--trace-out" => {
                check("--trace-out")?;
                flags.trace_out = Some(*it.next().ok_or("--trace-out needs a file argument")?);
            }
            "--out" => {
                check("--out")?;
                flags.out = Some(*it.next().ok_or("--out needs a file argument")?);
            }
            "--http" => {
                check("--http")?;
                flags.http = Some(*it.next().ok_or("--http needs a host:port argument")?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            pos => flags.positional.push(pos),
        }
    }
    Ok(flags)
}

/// `bichrome run` / `bichrome resume`.
fn run(args: &[&str], require_store: bool) -> Result<String, String> {
    let flags = parse_flags(
        args,
        &[
            "--store",
            "--format",
            "--serial",
            "--transport",
            "--trace-out",
        ],
    )?;
    let [path] = flags.positional.as_slice() else {
        return Err("expected exactly one campaign file argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = CampaignFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if require_store && file.store_path(flags.store).is_none() {
        return Err(
            "resume needs a store: pass --store <dir> or set `store = ...` in the campaign file"
                .to_string(),
        );
    }
    let mut campaign = file.to_campaign(flags.store);
    if flags.serial {
        campaign = campaign.parallel(false);
    }
    if let Some(kind) = flags.transport {
        campaign = campaign.transport(kind);
    }
    if flags.trace_out.is_some() {
        bichrome_obs::clear_spans();
        bichrome_obs::set_tracing(true);
    }
    let (report, stats) = campaign
        .try_run_with_stats()
        .map_err(|e| format!("campaign store: {e}"))?;
    if let Some(out) = flags.trace_out {
        write_trace(out)?;
    }
    match flags.format {
        Format::Json => Ok(report.to_json()),
        Format::Csv => Ok(report.to_csv()),
        Format::Text => {
            let mut out = report.render_table();
            writeln!(out, "{stats}").expect("string write");
            if let Some(store) = file.store_path(flags.store) {
                writeln!(out, "store: {store}").expect("string write");
            }
            Ok(out)
        }
    }
}

/// Exports the recorded spans as a Chrome trace-event file and
/// announces it on stderr (stdout stays the report — json/csv output
/// must remain byte-identical with tracing off).
fn write_trace(path: &str) -> Result<(), String> {
    let spans = bichrome_obs::span_events().len();
    std::fs::write(path, bichrome_obs::export_chrome_trace())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("trace: {spans} span(s) written to {path}");
    Ok(())
}

/// `bichrome trace`: a traced run whose stdout is the span
/// accounting, not the report (pair with a store to keep results).
fn trace(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--store", "--serial", "--transport", "--out"])?;
    let [path] = flags.positional.as_slice() else {
        return Err("expected exactly one campaign file argument".to_string());
    };
    let out = flags.out.ok_or("trace needs --out <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let file = CampaignFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut campaign = file.to_campaign(flags.store);
    if flags.serial {
        campaign = campaign.parallel(false);
    }
    if let Some(kind) = flags.transport {
        campaign = campaign.transport(kind);
    }
    bichrome_obs::clear_spans();
    bichrome_obs::set_tracing(true);
    let (_report, stats) = campaign
        .try_run_with_stats()
        .map_err(|e| format!("campaign store: {e}"))?;
    let spans = bichrome_obs::span_events().len();
    std::fs::write(out, bichrome_obs::export_chrome_trace())
        .map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!(
        "{stats}\ntrace: {spans} span(s) written to {out}\n"
    ))
}

/// `bichrome report`.
fn report(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--format"])?;
    let [dir] = flags.positional.as_slice() else {
        return Err("expected exactly one store directory argument".to_string());
    };
    let store = Store::open_existing(*dir).map_err(|e| e.to_string())?;
    let report = CampaignReport::from_store(&store)?;
    match flags.format {
        Format::Json => Ok(report.to_json()),
        Format::Csv => Ok(report.to_csv()),
        Format::Text => {
            let mut out = report.render_table();
            if let Some(salvage) = store.salvage() {
                writeln!(out, "warning: {salvage}").expect("string write");
            }
            Ok(out)
        }
    }
}

/// `bichrome diff`: baseline-relative comparison of two stores — the
/// first store is the baseline, ratios are `b / a`.
fn diff(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &[])?;
    let [dir_a, dir_b] = flags.positional.as_slice() else {
        return Err("expected exactly two store directory arguments".to_string());
    };
    let load = |dir: &str| -> Result<CampaignReport, String> {
        let store = Store::open_existing(dir).map_err(|e| e.to_string())?;
        CampaignReport::from_store(&store).map_err(|e| format!("{dir}: {e}"))
    };
    let a = load(dir_a)?;
    let b = load(dir_b)?;
    Ok(diff_reports(&a, &b, dir_a, dir_b))
}

/// `bichrome store <subcommand>` — store maintenance. Currently:
/// `merge <a> <b> <out>`.
fn store_cmd(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &[])?;
    match flags.positional.as_slice() {
        ["merge", a, b, out] => {
            let open = |dir: &str| Store::open_existing(dir).map_err(|e| format!("{dir}: {e}"));
            let (sa, sb) = (open(a)?, open(b)?);
            let merged = Store::merge(&sa, &sb, out).map_err(|e| e.to_string())?;
            Ok(format!(
                "merged {} + {} records -> {} records into {out}\n",
                sa.len(),
                sb.len(),
                merged.len()
            ))
        }
        ["merge", ..] => Err("store merge takes exactly <a> <b> <out>".to_string()),
        [sub, ..] => Err(format!("unknown store subcommand {sub:?} (try: merge)")),
        [] => Err("store needs a subcommand (try: merge <a> <b> <out>)".to_string()),
    }
}

/// `bichrome serve`: run the daemon until a `shutdown` request.
fn serve(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(
        args,
        &[
            "--addr",
            "--workers",
            "--no-local-workers",
            "--lease-timeout",
            "--http",
        ],
    )?;
    let [dir] = flags.positional.as_slice() else {
        return Err("expected exactly one store directory argument".to_string());
    };
    let addr = match flags.addr {
        Some(spec) => Addr::parse(spec)?,
        None => Addr::Unix(std::path::Path::new(dir).join("daemon.sock")),
    };
    let mut config = DaemonConfig {
        workers: flags.workers,
        local_pool: !flags.no_local_workers,
        ..DaemonConfig::default()
    };
    if let Some(secs) = flags.lease_timeout {
        config.lease_timeout = Duration::from_secs(secs);
    }
    let daemon = Daemon::start(*dir, config)?;
    if let Some(http_addr) = flags.http {
        let bound = bichrome_serve::spawn_metrics_http(http_addr)
            .map_err(|e| format!("binding metrics endpoint {http_addr}: {e}"))?;
        // Same contract as the daemon address below: with port 0 this
        // line is where scrapers learn the effective port.
        eprintln!("metrics listening at {bound}");
    }
    let listener = Listener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let effective = listener.local_addr();
    // To stderr, *before* the accept loop blocks: with `--addr
    // tcp:host:0` this is where the kernel-chosen port is announced
    // (workers and tests parse it).
    eprintln!("daemon listening at {effective}");
    daemon
        .serve(listener)
        .map_err(|e| format!("serving {effective}: {e}"))?;
    Ok(format!(
        "daemon at {effective} stopped (store checkpointed)\n"
    ))
}

/// Capped exponential backoff with deterministic jitter: consecutive
/// failure `attempt` (1-based) sleeps `base · 2^min(attempt−1, 6)`
/// plus an attempt-hashed jitter of up to 25%, so successive retries
/// decorrelate from the daemon's own restart cadence while a given
/// attempt always sleeps the same amount — chaos runs replay exactly.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1 << attempt.saturating_sub(1).min(6));
    // splitmix64-style finalizer over the attempt number.
    let mut h = (u64::from(attempt)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let jitter_cap = (exp.as_nanos() as u64 / 4).max(1);
    exp + Duration::from_nanos(h % jitter_cap)
}

/// The self-healing worker's view of one daemon interaction: retry
/// transient failures ([`ProtoError::is_retryable`]) with capped
/// exponential backoff, give up on fatal ones or after `max_retries`
/// consecutive failures. Accumulates the outage telemetry the next
/// successful `lease` piggybacks to the daemon.
struct Reconnector {
    base: Duration,
    max_retries: u32,
    /// Consecutive failures (resets on any success).
    failures: u32,
    /// 1 after an outage until the next accepted lease reports it.
    pending_reconnects: u64,
    /// Backoff slept since the last accepted lease, in nanoseconds.
    pending_backoff_ns: u64,
}

impl Reconnector {
    fn new(base: Duration, max_retries: u32) -> Reconnector {
        Reconnector {
            base,
            max_retries,
            failures: 0,
            pending_reconnects: 0,
            pending_backoff_ns: 0,
        }
    }

    /// Records a failed interaction: sleeps the backoff and returns
    /// `Ok(())` to retry, or returns the rendered give-up error.
    fn on_error(&mut self, addr: &Addr, e: &ProtoError) -> Result<(), String> {
        if !e.is_retryable() {
            return Err(format!("daemon at {addr} refused the worker: {e}"));
        }
        self.failures += 1;
        if self.failures > self.max_retries {
            return Err(format!(
                "lost the daemon at {addr} after {} retries: {e}",
                self.max_retries
            ));
        }
        let delay = backoff_delay(self.base, self.failures);
        // The outage (however many failures long) counts as one
        // reconnect once the daemon accepts a request again.
        self.pending_reconnects = 1;
        self.pending_backoff_ns = self
            .pending_backoff_ns
            .saturating_add(delay.as_nanos() as u64);
        std::thread::sleep(delay);
        Ok(())
    }

    /// Records any successful interaction: the outage (if one was in
    /// progress) is over.
    fn on_contact(&mut self) {
        self.failures = 0;
    }

    /// Records a successful `lease` specifically — the one request
    /// that carried the pending telemetry to the daemon, so it is
    /// cleared here and only here.
    fn on_lease_accepted(&mut self) {
        self.failures = 0;
        self.pending_reconnects = 0;
        self.pending_backoff_ns = 0;
    }
}

/// `bichrome work`: a remote worker — pull leases from a daemon,
/// compute them with the ordinary prepared-run machinery, stream the
/// records back. Exits when the daemon says stop (drain), immediately
/// on a fatal protocol error, or once the daemon has stayed
/// unreachable through `--max-retries` consecutive backoffs.
///
/// Mid-trial disconnects are survived by construction: the lease is
/// re-acquired idempotently (a trial is a pure function of its key,
/// so the daemon accepts whichever copy commits first and discards
/// the rest), and `complete` itself is retried through the same
/// backoff — a token the daemon already retired just answers
/// `accepted: false`.
fn work(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--connect", "--max-retries", "--backoff"])?;
    if !flags.positional.is_empty() {
        return Err("work takes no positional arguments (pass --connect <addr>)".to_string());
    }
    let spec = flags
        .connect
        .ok_or("a worker needs a daemon: pass --connect <addr>")?;
    let addr = Addr::parse(spec)?;
    let client = Client::new(addr.clone());
    let cache = InstanceCache::new();
    let mut computed: u64 = 0;
    let mut retry = Reconnector::new(
        Duration::from_millis(flags.backoff_ms.unwrap_or(100)),
        flags.max_retries.unwrap_or(50),
    );
    loop {
        match client.lease_reporting(retry.pending_reconnects, retry.pending_backoff_ns) {
            Ok(LeaseGrant::Trial(t)) => {
                retry.on_lease_accepted();
                let key = TrialKey {
                    protocol: t.protocol.clone(),
                    graph: t.graph.clone(),
                    partitioner: t.partitioner.clone(),
                    seed: t.seed,
                };
                let kind: TransportKind = t
                    .transport
                    .parse()
                    .map_err(|e| format!("daemon sent a bad transport: {e}"))?;
                let fault: FaultPlan = t
                    .fault
                    .parse()
                    .map_err(|e| format!("daemon sent a bad fault plan: {e}"))?;
                let record = compute_trial(&key, kind, &fault, &cache)?;
                let json = record.to_json();
                // Retry the return leg too: completes are idempotent
                // (the token removal arbitrates), so resending after
                // a mid-complete disconnect at worst earns a polite
                // `accepted: false`.
                loop {
                    match client.complete(t.lease, &json) {
                        Ok(accepted) => {
                            retry.on_contact();
                            computed += u64::from(accepted);
                            break;
                        }
                        Err(e) if !e.is_retryable() => {
                            eprintln!("record for seed {} rejected: {e}", key.seed);
                            break;
                        }
                        Err(e) => retry.on_error(&addr, &e)?,
                    }
                }
            }
            Ok(LeaseGrant::Idle) => {
                retry.on_lease_accepted();
                std::thread::sleep(Duration::from_millis(25));
            }
            Ok(LeaseGrant::Stop) => break,
            Err(e) => retry.on_error(&addr, &e)?,
        }
    }
    Ok(format!("worker done: computed {computed} trials\n"))
}

/// `bichrome submit`: send a campaign file's *contents* to the
/// daemon (the daemon need not share a filesystem with the client).
fn submit(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr", "--watch"])?;
    let [path] = flags.positional.as_slice() else {
        return Err("expected exactly one campaign file argument".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let client = Client::new(flags.daemon_addr()?);
    let job = client.submit(&text)?;
    if !flags.watch {
        return Ok(format!("job {job}\n"));
    }
    let mut out = format!("job {job}\n");
    out.push_str(&watch_to_end(&client, job)?);
    Ok(out)
}

/// `bichrome watch`.
fn watch(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    let [job] = flags.positional.as_slice() else {
        return Err("expected exactly one job-id argument".to_string());
    };
    let job: u64 = job
        .parse()
        .map_err(|_| format!("job id {job:?} is not a number"))?;
    watch_to_end(&Client::new(flags.daemon_addr()?), job)
}

/// Streams a job's events, rendering one line per trial and closing
/// with the `computed N trials (K skipped via store)` accounting.
fn watch_to_end(client: &Client, job: u64) -> Result<String, String> {
    let mut out = String::new();
    let end = client.watch(job, |event| {
        let Some(o) = event.as_object() else { return };
        let s = |f: &str| o.get(f).and_then(Value::as_str).unwrap_or("?").to_string();
        let n = |f: &str| o.get(f).and_then(Value::as_u64).unwrap_or(0);
        writeln!(
            out,
            "trial {}/{}: {} on {} · {} · seed {}",
            n("computed"),
            n("pending"),
            s("protocol"),
            s("graph"),
            s("partitioner"),
            s("seed"),
        )
        .expect("string write");
    })?;
    let o = end.as_object().ok_or("malformed end event")?;
    let state = o.get("state").and_then(Value::as_str).unwrap_or("?");
    let summary = o.get("summary").and_then(Value::as_str).unwrap_or("?");
    writeln!(out, "job {job} {state}: {summary}").expect("string write");
    if let Some(err) = o.get("error").and_then(Value::as_str) {
        writeln!(out, "error: {err}").expect("string write");
    }
    Ok(out)
}

/// `bichrome jobs`.
fn jobs(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    if !flags.positional.is_empty() {
        return Err("jobs takes no positional arguments".to_string());
    }
    let jobs = Client::new(flags.daemon_addr()?).jobs()?;
    let mut t = Table::new(&["job", "state", "computed", "skipped", "total"]);
    for job in &jobs {
        let Some(o) = job.as_object() else { continue };
        let s = |f: &str| o.get(f).and_then(Value::as_str).unwrap_or("?").to_string();
        let n = |f: &str| {
            o.get(f)
                .and_then(Value::as_u64)
                .map_or("?".to_string(), |x| x.to_string())
        };
        t.row(&[
            &n("job"),
            &s("state"),
            &n("computed"),
            &n("skipped"),
            &n("total"),
        ]);
    }
    Ok(format!("{}\n{} job(s)\n", t.render(), jobs.len()))
}

/// `bichrome cancel`.
fn cancel(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    let [job] = flags.positional.as_slice() else {
        return Err("expected exactly one job-id argument".to_string());
    };
    let job: u64 = job
        .parse()
        .map_err(|_| format!("job id {job:?} is not a number"))?;
    Client::new(flags.daemon_addr()?).cancel(job)?;
    Ok(format!("job {job} cancelling\n"))
}

/// `bichrome ping`.
fn ping(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    let addr = flags.daemon_addr()?;
    if Client::new(addr.clone()).ping() {
        Ok(format!("daemon at {addr} is up\n"))
    } else {
        Err(format!("no daemon answers at {addr}"))
    }
}

/// `bichrome stats`: one `name: value` line per daemon counter
/// (sorted by name — `Value` objects are BTreeMaps).
fn stats(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    if !flags.positional.is_empty() {
        return Err("stats takes no positional arguments".to_string());
    }
    let stats = Client::new(flags.daemon_addr()?).stats()?;
    let o = stats.as_object().ok_or("malformed stats reply")?;
    let mut out = String::new();
    for (name, value) in o {
        if name == "ok" {
            continue;
        }
        let rendered = value
            .as_u64()
            .map(|n| n.to_string())
            .or_else(|| value.as_f64().map(|x| format!("{x}")))
            .or_else(|| value.as_str().map(str::to_string))
            .unwrap_or_else(|| "?".to_string());
        writeln!(out, "{name}: {rendered}").expect("string write");
    }
    Ok(out)
}

/// `bichrome metrics`: the daemon's full obs registry, one line per
/// metric — counters and gauges as `name: value`, histograms as
/// `name: count=…  sum=… p50=… p95=… p99=…`.
fn metrics(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    if !flags.positional.is_empty() {
        return Err("metrics takes no positional arguments".to_string());
    }
    let v = Client::new(flags.daemon_addr()?).metrics()?;
    let o = v.as_object().ok_or("malformed metrics reply")?;
    let num = |v: &Value| {
        v.as_u64()
            .map(|n| n.to_string())
            .or_else(|| v.as_f64().map(|x| format!("{x}")))
            .unwrap_or_else(|| "?".to_string())
    };
    let mut out = String::new();
    for section in ["counters", "gauges"] {
        if let Some(entries) = o.get(section).and_then(Value::as_object) {
            for (name, value) in entries {
                writeln!(out, "{name}: {}", num(value)).expect("string write");
            }
        }
    }
    if let Some(entries) = o.get("histograms").and_then(Value::as_object) {
        for (name, value) in entries {
            let Some(h) = value.as_object() else { continue };
            let f = |field: &str| h.get(field).map_or("?".to_string(), &num);
            writeln!(
                out,
                "{name}: count={} sum={} p50={} p95={} p99={}",
                f("count"),
                f("sum"),
                f("p50"),
                f("p95"),
                f("p99"),
            )
            .expect("string write");
        }
    }
    Ok(out)
}

/// `bichrome shutdown`.
fn shutdown(args: &[&str]) -> Result<String, String> {
    let flags = parse_flags(args, &["--addr"])?;
    let addr = flags.daemon_addr()?;
    Client::new(addr.clone()).shutdown()?;
    Ok(format!("daemon at {addr} drained and stopped\n"))
}

/// `bichrome registry`.
fn registry_listing() -> String {
    let reg = registry();
    let mut t = Table::new(&["key", "guarantee"]);
    for proto in reg.iter() {
        t.row(&[proto.name(), proto.describe()]);
    }
    format!(
        "{}\n{} protocols · use any key on a campaign's protocol axis\n",
        t.render(),
        reg.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch_strs(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch_strs(&[]).expect("usage").contains("USAGE"));
        assert!(dispatch_strs(&["help"]).expect("usage").contains("resume"));
        let err = dispatch_strs(&["frobnicate"]).expect_err("unknown");
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn registry_lists_all_protocols() {
        let out = dispatch_strs(&["registry"]).expect("listing");
        for key in registry().names() {
            assert!(out.contains(key), "missing {key}");
        }
        assert!(out.contains("9 protocols"));
    }

    #[test]
    fn flag_validation() {
        assert!(dispatch_strs(&["run"]).is_err(), "missing file");
        assert!(
            dispatch_strs(&["report", "x", "--serial"]).is_err(),
            "--serial is not a report flag"
        );
        assert!(dispatch_strs(&["run", "x", "--format", "yaml"])
            .expect_err("bad format")
            .contains("yaml"),);
        assert!(dispatch_strs(&["diff", "only-one"]).is_err());
        assert!(dispatch_strs(&["report", "/no/such/store"])
            .expect_err("missing store")
            .contains("not a bichrome store"));
    }

    #[test]
    fn transport_and_worker_flags_validate() {
        assert!(
            dispatch_strs(&["run", "x", "--transport", "carrier-pigeon"])
                .expect_err("bad transport")
                .contains("inproc|pipe|tcp")
        );
        assert!(
            dispatch_strs(&["report", "x", "--transport", "tcp"]).is_err(),
            "--transport is not a report flag"
        );
        assert!(dispatch_strs(&["work"])
            .expect_err("worker without a daemon")
            .contains("--connect"));
        assert!(dispatch_strs(&["work", "stray"])
            .expect_err("worker with a positional")
            .contains("no positional"));
        assert!(dispatch_strs(&["serve", "x", "--lease-timeout", "soon"])
            .expect_err("bad timeout")
            .contains("not a number"));
        assert!(
            dispatch_strs(&["run", "x", "--no-local-workers"]).is_err(),
            "--no-local-workers is a serve flag"
        );
    }

    #[test]
    fn self_healing_flags_validate() {
        assert!(
            dispatch_strs(&["work", "--connect", "tcp:x:1", "--max-retries"])
                .expect_err("dangling --max-retries")
                .contains("count")
        );
        assert!(
            dispatch_strs(&["work", "--connect", "tcp:x:1", "--max-retries", "lots"])
                .expect_err("non-numeric retries")
                .contains("not a number")
        );
        assert!(
            dispatch_strs(&["work", "--connect", "tcp:x:1", "--backoff"])
                .expect_err("dangling --backoff")
                .contains("milliseconds")
        );
        assert!(
            dispatch_strs(&["work", "--connect", "tcp:x:1", "--backoff", "slowly"])
                .expect_err("non-numeric backoff")
                .contains("not a number")
        );
        assert!(
            dispatch_strs(&["run", "x", "--max-retries", "3"]).is_err(),
            "--max-retries is a work flag"
        );
        assert!(
            dispatch_strs(&["serve", "x", "--backoff", "10"]).is_err(),
            "--backoff is a work flag"
        );
    }

    #[test]
    fn observability_flags_validate() {
        assert!(dispatch_strs(&["trace", "x"])
            .expect_err("trace without a sink")
            .contains("--out"));
        assert!(
            dispatch_strs(&["report", "x", "--trace-out", "t.json"]).is_err(),
            "--trace-out is a run flag"
        );
        assert!(
            dispatch_strs(&["run", "x", "--http", "127.0.0.1:0"]).is_err(),
            "--http is a serve flag"
        );
        assert!(dispatch_strs(&["run", "x", "--trace-out"])
            .expect_err("dangling --trace-out")
            .contains("file argument"));
        assert!(dispatch_strs(&["metrics"])
            .expect_err("metrics without a daemon")
            .contains("--addr"));
        assert!(dispatch_strs(&["metrics", "stray", "--addr", "tcp:h:1"])
            .expect_err("metrics with a positional")
            .contains("no positional"));
    }
}
