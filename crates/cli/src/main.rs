//! The `bichrome` binary: a thin shim over
//! [`bichrome_cli::dispatch`] (all logic lives in the library so it
//! is testable in-process).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bichrome_cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("bichrome: {message}");
            std::process::exit(1);
        }
    }
}
