//! The chaos acceptance test, across real process boundaries: worker
//! processes are started *before* the daemon exists — so their
//! reconnect loop has real outages to survive — and the campaign they
//! then execute injects deterministic link faults (`sever@3`) under
//! every TCP session. Acceptance is twofold: the daemon's stats show
//! the workers reconnected, and the distributed chaos report is
//! byte-identical to a fault-free in-process run of the same grid.

use bichrome_cli::dispatch;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// A unique scratch directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bichrome-chaos-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion can't leak
/// processes.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn call(args: &[&str]) -> Result<String, String> {
    dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

/// The chaos campaign: real TCP sessions with the link severed at
/// frame 3 of every trial — each session transparently reconnects,
/// retransmits, and meters as if nothing happened.
const CHAOS_CAMPAIGN: &str = r#"
[campaign]
protocols = ["baseline/send-everything", "edge/theorem2"]
graphs    = ["near-regular(n=24,d=4)"]
seeds     = "0..3"
transport = "tcp"
fault     = "sever@3"
"#;

/// The same grid with no chaos at all — the byte-identity baseline.
const CLEAN_CAMPAIGN: &str = r#"
[campaign]
protocols = ["baseline/send-everything", "edge/theorem2"]
graphs    = ["near-regular(n=24,d=4)"]
seeds     = "0..3"
"#;

/// Reserves an ephemeral port by binding and immediately releasing
/// it, so worker processes can be aimed at an address *before* the
/// daemon binds it.
fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr")
        .port()
}

#[test]
fn workers_outlive_a_late_daemon_and_chaos_report_is_bit_identical() {
    let tmp = TempDir::new("e2e");
    let chaos_toml = tmp.path("chaos.toml");
    let clean_toml = tmp.path("clean.toml");
    let store = tmp.path("store");
    std::fs::write(&chaos_toml, CHAOS_CAMPAIGN).expect("write chaos campaign");
    std::fs::write(&clean_toml, CLEAN_CAMPAIGN).expect("write clean campaign");
    let exe = env!("CARGO_BIN_EXE_bichrome");

    // Workers first, daemon later: both point at a reserved port with
    // nothing listening yet, so each worker's reconnect loop survives
    // at least one real outage before its first lease. A short
    // backoff base keeps the test quick.
    let addr = format!("tcp:127.0.0.1:{}", reserve_port());
    let workers: Vec<Reap> = (0..2)
        .map(|_| {
            Reap(
                Command::new(exe)
                    .args(["work", "--connect", &addr, "--backoff", "25"])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn worker"),
            )
        })
        .collect();
    // Let both workers fail against the unbound port at least once.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Now the scheduler-only daemon appears at that address; the
    // workers' next retry finds it.
    let mut daemon = Command::new(exe)
        .args(["serve", &store, "--addr", &addr, "--no-local-workers"])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    {
        let stderr = daemon.stderr.take().expect("daemon stderr");
        let mut line = String::new();
        BufReader::new(stderr)
            .read_line(&mut line)
            .expect("daemon announces itself");
        assert!(
            line.trim().strip_prefix("daemon listening at ").is_some(),
            "unexpected announcement: {line:?}"
        );
    }
    let mut daemon = Reap(daemon);

    // Submit the chaos campaign and watch it drain: every trial is
    // computed by a recovered-from-outage worker, under link faults.
    let watched = call(&["submit", &chaos_toml, "--addr", &addr, "--watch"]).expect("submit");
    assert!(
        watched.contains("computed 6 trials (0 skipped via store)"),
        "{watched}"
    );

    // The daemon's ledger: all six leased out and completed, and the
    // piggybacked worker telemetry recorded the pre-daemon outages.
    let stats = call(&["stats", "--addr", &addr]).expect("stats");
    assert!(stats.contains("leases_completed: 6"), "{stats}");
    assert!(stats.contains("leases_outstanding: 0"), "{stats}");
    let reconnects: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("worker_reconnects: "))
        .expect("stats lists worker_reconnects")
        .trim()
        .parse()
        .expect("worker_reconnects is a number");
    assert!(
        reconnects > 0,
        "the workers must have survived at least one outage: {stats}"
    );

    call(&["shutdown", "--addr", &addr]).expect("shutdown");
    let status = daemon.0.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status}");
    drop(workers);

    // Acceptance: chaos changed nothing. The distributed faulted
    // store reports byte-identically to a fault-free in-process run.
    let remote_csv = call(&["report", &store, "--format", "csv"]).expect("offline report");
    let local_csv = call(&["run", &clean_toml, "--format", "csv"]).expect("in-process run");
    assert_eq!(
        remote_csv, local_csv,
        "fault injection must be invisible in the records"
    );
}
