//! End-to-end tests of the `bichrome` command surface, driven
//! in-process through `dispatch` (the binary `main` is a shim over
//! it): run → warm run → report → diff, against real campaign files
//! and stores on disk.

use bichrome_cli::dispatch;
use std::path::PathBuf;

/// A unique scratch directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bichrome-cli-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn call(args: &[&str]) -> Result<String, String> {
    dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

/// A small deterministic campaign (fixed partitioner, deterministic
/// protocols) so outputs are stable across runs.
const CAMPAIGN: &str = r#"
[campaign]
protocols    = ["edge/theorem2", "edge/theorem3-zero-comm"]
graphs       = ["near-regular(n=24,d=4)"]
partitioners = ["alternating"]
seeds        = "0..3"
"#;

#[test]
fn run_then_warm_run_then_report_round_trips() {
    let tmp = TempDir::new("roundtrip");
    let toml = tmp.path("campaign.toml");
    let store = tmp.path("store");
    std::fs::write(&toml, CAMPAIGN).expect("write campaign file");

    // Cold run: everything computes, and the stats line says so.
    let cold = call(&["run", &toml, "--store", &store]).expect("cold run");
    assert!(
        cold.contains("computed 6 trials (0 skipped via store)"),
        "{cold}"
    );
    assert!(cold.contains("edge/theorem2"), "{cold}");

    // Warm run: the store holds the whole grid — nothing computes.
    let warm = call(&["run", &toml, "--store", &store]).expect("warm run");
    assert!(
        warm.contains("computed 0 trials (6 skipped via store)"),
        "{warm}"
    );

    // The warm run's CSV equals the cold run's (bit-identical grid).
    let cold_csv = call(&["run", &toml, "--store", &store, "--format", "csv"]).expect("csv");
    assert!(cold_csv.starts_with("protocol,graph,"), "{cold_csv}");

    // `report` re-aggregates purely from the store. This campaign's
    // canonical cell order matches the axis order, so the CSV matches
    // the run's exactly.
    let report_csv = call(&["report", &store, "--format", "csv"]).expect("report csv");
    assert_eq!(
        report_csv, cold_csv,
        "store re-aggregation must be faithful"
    );
    let report_json = call(&["report", &store, "--format", "json"]).expect("report json");
    assert!(report_json.contains("\"cells\":2"), "{report_json}");

    // `--serial` must not change anything either.
    let serial = call(&[
        "run", &toml, "--store", &store, "--format", "csv", "--serial",
    ])
    .expect("serial run");
    assert_eq!(serial, cold_csv);
}

#[test]
fn resume_requires_a_store_and_finishes_a_partial_run() {
    let tmp = TempDir::new("resume");
    let toml = tmp.path("campaign.toml");
    let half_toml = tmp.path("half.toml");
    let store = tmp.path("store");
    std::fs::write(&toml, CAMPAIGN).expect("write campaign file");
    std::fs::write(&half_toml, CAMPAIGN.replace("0..3", "0..1")).expect("write half file");

    let err = call(&["resume", &toml]).expect_err("no store anywhere");
    assert!(err.contains("resume needs a store"), "{err}");

    // Simulate a killed run: only the first seed got computed.
    let half = call(&["run", &half_toml, "--store", &store]).expect("half run");
    assert!(half.contains("computed 2 trials"), "{half}");

    // Resume the full grid: only the missing two-thirds compute.
    let resumed = call(&["resume", &toml, "--store", &store]).expect("resume");
    assert!(
        resumed.contains("computed 4 trials (2 skipped via store)"),
        "{resumed}"
    );

    // And the final report equals a storeless fresh run of the grid.
    let from_store = call(&["report", &store, "--format", "csv"]).expect("report");
    let fresh = call(&["run", &toml, "--format", "csv"]).expect("fresh run");
    assert_eq!(from_store, fresh, "resumed grid must be bit-identical");
}

#[test]
fn diff_compares_two_stores_cell_by_cell() {
    let tmp = TempDir::new("diff");
    let toml_a = tmp.path("a.toml");
    let toml_b = tmp.path("b.toml");
    let (store_a, store_b) = (tmp.path("store-a"), tmp.path("store-b"));
    std::fs::write(&toml_a, CAMPAIGN).expect("write");
    // b shares one protocol with a and adds a different one.
    std::fs::write(
        &toml_b,
        CAMPAIGN.replace("edge/theorem3-zero-comm", "baseline/send-everything"),
    )
    .expect("write");
    call(&["run", &toml_a, "--store", &store_a]).expect("run a");
    call(&["run", &toml_b, "--store", &store_b]).expect("run b");

    let out = call(&["diff", &store_a, &store_b]).expect("diff");
    assert!(out.contains("1 shared cell(s)"), "{out}");
    // The shared deterministic cell is identical across stores.
    assert!(out.contains("1.00x"), "{out}");
    assert!(out.contains("only in a: edge/theorem3-zero-comm"), "{out}");
    assert!(out.contains("only in b: baseline/send-everything"), "{out}");
}

/// The daemon through the CLI surface: `serve` in a thread, then
/// `ping` / `submit --watch` / `jobs` / `shutdown` as clients, ending
/// with an offline `report` against the daemon's checkpointed store.
#[test]
fn daemon_serves_submissions_over_a_socket() {
    let tmp = TempDir::new("daemon");
    let toml = tmp.path("campaign.toml");
    std::fs::write(&toml, CAMPAIGN).expect("write campaign file");
    let store = tmp.path("store");
    let addr = format!("unix:{}", tmp.path("daemon.sock"));

    let server = {
        let (store, addr) = (store.clone(), addr.clone());
        std::thread::spawn(move || call(&["serve", &store, "--addr", &addr]))
    };
    for _ in 0..200 {
        if call(&["ping", "--addr", &addr]).is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let cold = call(&["submit", &toml, "--addr", &addr, "--watch"]).expect("cold submit");
    assert!(cold.contains("job 1"), "{cold}");
    assert!(
        cold.contains("computed 6 trials (0 skipped via store)"),
        "{cold}"
    );

    let warm = call(&["submit", &toml, "--addr", &addr, "--watch"]).expect("warm submit");
    assert!(
        warm.contains("computed 0 trials (6 skipped via store)"),
        "{warm}"
    );

    let jobs = call(&["jobs", "--addr", &addr]).expect("jobs");
    assert!(jobs.contains("2 job(s)"), "{jobs}");
    assert_eq!(jobs.matches("done").count(), 2, "{jobs}");

    call(&["shutdown", "--addr", &addr]).expect("shutdown");
    let stopped = server.join().expect("serve thread").expect("serve exits");
    assert!(stopped.contains("stopped"), "{stopped}");
    assert!(
        call(&["ping", "--addr", &addr]).is_err(),
        "daemon must be gone"
    );

    // The checkpointed store is a plain store: offline report works.
    let csv = call(&["report", &store, "--format", "csv"]).expect("offline report");
    assert!(csv.starts_with("protocol,graph,"), "{csv}");
    assert_eq!(csv.lines().count(), 1 + 2, "{csv}");
}

/// `store merge` unions stores with identical shared records and
/// refuses genuinely conflicting ones.
#[test]
fn store_merge_unions_and_refuses_conflicts() {
    use bichrome_store::Store;

    let tmp = TempDir::new("merge");
    let toml_a = tmp.path("a.toml");
    let toml_b = tmp.path("b.toml");
    let (store_a, store_b) = (tmp.path("store-a"), tmp.path("store-b"));
    std::fs::write(&toml_a, CAMPAIGN).expect("write");
    // b shares the deterministic edge/theorem2 cells with a.
    std::fs::write(
        &toml_b,
        CAMPAIGN.replace("edge/theorem3-zero-comm", "baseline/send-everything"),
    )
    .expect("write");
    call(&["run", &toml_a, "--store", &store_a]).expect("run a");
    call(&["run", &toml_b, "--store", &store_b]).expect("run b");

    // Union: 6 + 6 records with 3 identical shared keys -> 9.
    let merged = tmp.path("merged");
    let out = call(&["store", "merge", &store_a, &store_b, &merged]).expect("merge");
    assert!(out.contains("merged 6 + 6 records -> 9 records"), "{out}");
    let report = call(&["report", &merged, "--format", "json"]).expect("merged report");
    assert!(report.contains("\"cells\":3"), "{report}");

    // A store holding the same key with a *different* payload is a
    // conflict the merge must refuse.
    let conflicted = tmp.path("conflicted");
    {
        let a = Store::open_existing(&store_a).expect("open a");
        let key = a.iter().next().expect("a has records").key.clone();
        let mut c = Store::open_or_create(&conflicted).expect("create");
        c.append(key, "{\"tampered\":1}".to_string())
            .expect("append");
    }
    let out2 = tmp.path("out2");
    let err = call(&["store", "merge", &store_a, &conflicted, &out2]).expect_err("conflict");
    assert!(err.contains("conflict"), "{err}");

    // Sub-command surface errors are descriptive.
    let err = call(&["store", "merge", "just-one"]).expect_err("arity");
    assert!(err.contains("<a> <b> <out>"), "{err}");
    let err = call(&["store", "frob"]).expect_err("unknown sub");
    assert!(err.contains("unknown store subcommand"), "{err}");
}

#[test]
fn run_reports_declaration_errors_with_the_file_name() {
    let tmp = TempDir::new("badfile");
    let toml = tmp.path("bad.toml");
    std::fs::write(&toml, CAMPAIGN.replace("edge/theorem2", "edge/theorem9")).expect("write");
    let err = call(&["run", &toml]).expect_err("unknown protocol");
    assert!(
        err.contains("bad.toml") && err.contains("edge/theorem9"),
        "{err}"
    );
    let err = call(&["run", &tmp.path("missing.toml")]).expect_err("missing file");
    assert!(err.contains("missing.toml"), "{err}");
}
