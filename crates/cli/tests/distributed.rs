//! The distributed acceptance test, across real process boundaries:
//! a scheduler-only `bichrome serve` daemon plus two `bichrome work`
//! worker *processes* execute a TCP-transport campaign over the wire,
//! and the daemon's store reports bit-identically to an in-process
//! run of the same grid.

use bichrome_cli::dispatch;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// A unique scratch directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bichrome-dist-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion can't leak
/// processes.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn call(args: &[&str]) -> Result<String, String> {
    dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

/// The campaign under test asks for real TCP sessions, so the
/// workers' protocol rounds cross actual sockets twice over: worker ↔
/// daemon for scheduling, Alice ↔ Bob inside each trial. The protocol
/// axis is listed in store-canonical (sorted) order so the offline
/// store report and the in-process run render cells identically.
const CAMPAIGN: &str = r#"
[campaign]
protocols = ["baseline/send-everything", "edge/theorem2"]
graphs    = ["near-regular(n=24,d=4)"]
seeds     = "0..3"
transport = "tcp"
"#;

#[test]
fn a_daemon_and_two_worker_processes_reproduce_the_in_process_report() {
    let tmp = TempDir::new("e2e");
    let toml = tmp.path("campaign.toml");
    let store = tmp.path("store");
    std::fs::write(&toml, CAMPAIGN).expect("write campaign file");
    let exe = env!("CARGO_BIN_EXE_bichrome");

    // A scheduler-only daemon on an ephemeral TCP port: with no local
    // pool, any computed trial was computed by a remote worker.
    let mut daemon = Command::new(exe)
        .args([
            "serve",
            &store,
            "--addr",
            "tcp:127.0.0.1:0",
            "--no-local-workers",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let addr = {
        let stderr = daemon.stderr.take().expect("daemon stderr");
        let mut line = String::new();
        BufReader::new(stderr)
            .read_line(&mut line)
            .expect("daemon announces itself");
        line.trim()
            .strip_prefix("daemon listening at ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string()
    };
    let mut daemon = Reap(daemon);

    // Two worker processes pulling from it.
    let workers: Vec<Reap> = (0..2)
        .map(|_| {
            Reap(
                Command::new(exe)
                    .args(["work", "--connect", &addr])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn worker"),
            )
        })
        .collect();

    // Submit and watch to completion: every trial computes (remotely).
    let watched = call(&["submit", &toml, "--addr", &addr, "--watch"]).expect("submit");
    assert!(
        watched.contains("computed 6 trials (0 skipped via store)"),
        "{watched}"
    );

    // The daemon's own ledger agrees that workers did all six.
    let stats = call(&["stats", "--addr", &addr]).expect("stats");
    assert!(stats.contains("leases_completed: 6"), "{stats}");
    assert!(stats.contains("leases_outstanding: 0"), "{stats}");

    // Stop the daemon; it checkpoints the store and exits cleanly.
    call(&["shutdown", "--addr", &addr]).expect("shutdown");
    let status = daemon.0.wait().expect("daemon exit");
    assert!(status.success(), "daemon exited {status}");
    // The workers are idle pollers now; Reap reclaims them.
    drop(workers);

    // Acceptance: the distributed store reports bit-identically to a
    // plain in-process run of the same campaign.
    let remote_csv = call(&["report", &store, "--format", "csv"]).expect("offline report");
    let local_csv = call(&["run", &toml, "--format", "csv"]).expect("in-process run");
    assert_eq!(
        remote_csv, local_csv,
        "distributed execution must be bit-identical"
    );
}
