//! Property form of the zero-perturbation guarantee: over random grid
//! points spanning vertex, edge, and streaming protocols, the
//! `TrialRecord` a trial produces is byte-identical (as its canonical
//! JSON) whether span tracing is enabled or disabled. Metrics and
//! spans only *read* the execution; they never feed back into it.
//!
//! Lives in its own test binary (one property) because the tracing
//! gate is process-global and the property toggles it per case.

use bichrome::obs;
use bichrome::runner::{compute_trial, FaultPlan, GraphSpec, InstanceCache, TransportKind};
use bichrome::store::TrialKey;
use proptest::prelude::*;

/// One protocol per family — the record shapes differ (vertex
/// artifact, edge artifact, measurement metrics), so each exercises a
/// different serialization path.
const PROTOCOLS: [&str; 3] = ["vertex/theorem1", "edge/theorem2", "streaming/greedy-w"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_trial_records_are_bit_identical_with_tracing_on_and_off(
        n in 8usize..40,
        d in 2usize..6,
        seed in 0u64..1000,
    ) {
        let cache = InstanceCache::new();
        for key in PROTOCOLS {
            let trial = TrialKey {
                protocol: key.to_string(),
                graph: GraphSpec::NearRegular { n, d }.to_string(),
                partitioner: "random(per-seed)".to_string(),
                seed,
            };
            obs::set_tracing(false);
            let off = compute_trial(&trial, TransportKind::InProc, &FaultPlan::new(), &cache)
                .expect("untraced trial computes");
            obs::set_tracing(true);
            let on = compute_trial(&trial, TransportKind::InProc, &FaultPlan::new(), &cache)
                .expect("traced trial computes");
            obs::set_tracing(false);
            prop_assert_eq!(
                on.to_json(),
                off.to_json(),
                "{} record changed under tracing", key
            );
        }
    }
}
