//! Property tests pinning the tentpole invariant of the intra-trial
//! parallelism work: the thread budget is a *performance* knob, never
//! a *semantics* knob. At any budget, every layer — Misra–Gries fan
//! coloring, the D1LC finishing rounds, and whole protocol trials —
//! must produce bit-identical artifacts, communication meters, and
//! serialized [`TrialRecord`]s.

use bichrome_comm::session::run_two_party_ctx;
use bichrome_comm::{with_intra_budget, Side};
use bichrome_core::d1lc::{solve_d1lc, D1lcInput};
use bichrome_graph::coloring::ColorId;
use bichrome_graph::edge_color::{misra_gries, misra_gries_with_budget};
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Graph, VertexId};
use bichrome_runner::{registry, Instance, TrialRecord};
use proptest::prelude::*;

/// The non-serial budgets every layer is checked against.
const BUDGETS: [usize; 3] = [2, 4, 8];

/// Strategy: a random simple graph with `n ∈ [2, 60]`.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..60, 0u64..10_000).prop_map(|(n, seed)| {
        let p = 0.02 + (seed % 17) as f64 / 40.0;
        gen::gnp(n, p.min(0.5), seed)
    })
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        Just(Partitioner::Alternating),
        Just(Partitioner::ParitySum),
        Just(Partitioner::LowHalf),
        (0u64..1000).prop_map(Partitioner::Random),
    ]
}

/// Builds a D1LC instance pair the way Theorem 1 does: greedily
/// pre-color three quarters of the vertices, let `Z` be the rest, and
/// give each party the palette minus its own colored neighbors.
fn d1lc_pair(g: &Graph, part: Partitioner) -> (D1lcInput, D1lcInput) {
    let p = part.split(g);
    let palette = g.max_degree() + 1;
    let full = bichrome_graph::greedy::greedy_vertex_coloring(g);
    let z: Vec<VertexId> = g
        .vertices()
        .filter(|v| v.index().is_multiple_of(4))
        .collect();
    let pre = |v: VertexId| -> Option<ColorId> {
        if v.index().is_multiple_of(4) {
            None
        } else {
            full.get(v)
        }
    };
    let psi_of = |side: &Graph| -> Vec<Vec<ColorId>> {
        z.iter()
            .map(|&v| {
                let occupied: Vec<ColorId> =
                    side.neighbors(v).iter().filter_map(|&u| pre(u)).collect();
                (0..palette as u32)
                    .map(ColorId)
                    .filter(|c| !occupied.contains(c))
                    .collect()
            })
            .collect()
    };
    let (psi_a, psi_b) = (psi_of(p.alice()), psi_of(p.bob()));
    let ia = D1lcInput {
        side: Side::Alice,
        graph: p.alice().clone(),
        z: z.clone(),
        psi: psi_a,
        palette,
    };
    let ib = D1lcInput {
        side: Side::Bob,
        graph: p.bob().clone(),
        z,
        psi: psi_b,
        palette,
    };
    (ia, ib)
}

/// Runs one protocol trial under an ambient intra-trial budget and
/// returns its fully serialized record (colors, validity + first
/// violation, and the communication meter all round through it).
fn trial_json(key: &str, g: &Graph, part: Partitioner, seed: u64, budget: usize) -> String {
    let inst = Instance::new("determinism", part.split(g), seed);
    let proto = registry().get(key).expect("registered");
    let out = with_intra_budget(budget, || proto.run(&inst));
    TrialRecord::from_outcome(&inst, out).to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Misra–Gries: the speculative windowed path must equal the
    /// serial loop color-for-color.
    #[test]
    fn prop_misra_gries_budget_is_invisible(g in arb_graph()) {
        let serial = misra_gries(&g);
        for budget in BUDGETS {
            let budgeted = misra_gries_with_budget(&g, budget);
            prop_assert_eq!(&serial, &budgeted, "budget {} diverged", budget);
        }
    }

    /// D1LC: both parties' colorings and the bit/round meter must be
    /// identical at every budget.
    #[test]
    fn prop_d1lc_budget_is_invisible(
        g in arb_graph(),
        part in arb_partitioner(),
        seed in 0u64..1000,
    ) {
        let (ia, ib) = d1lc_pair(&g, part);
        let run = |budget: usize| {
            let (ia, ib) = (ia.clone(), ib.clone());
            with_intra_budget(budget, || {
                run_two_party_ctx(seed, move |ctx| solve_d1lc(&ia, &ctx), move |ctx| {
                    solve_d1lc(&ib, &ctx)
                })
            })
        };
        let (sa, sb, sstats) = run(1);
        for budget in BUDGETS {
            let (pa, pb, pstats) = run(budget);
            prop_assert_eq!(&sa, &pa, "Alice diverged at budget {}", budget);
            prop_assert_eq!(&sb, &pb, "Bob diverged at budget {}", budget);
            prop_assert_eq!(&sstats, &pstats, "CommStats diverged at budget {}", budget);
        }
    }

    /// Whole trials: the serialized TrialRecord (label, sizes, bits,
    /// rounds, colors, validity, first violation, metrics) must be
    /// byte-identical at every budget for both paper protocols.
    #[test]
    fn prop_trial_record_json_budget_is_invisible(
        g in arb_graph(),
        part in arb_partitioner(),
        seed in 0u64..1000,
    ) {
        for key in ["vertex/theorem1", "edge/theorem2"] {
            let serial = trial_json(key, &g, part, seed, 1);
            for budget in BUDGETS {
                let budgeted = trial_json(key, &g, part, seed, budget);
                prop_assert_eq!(
                    &serial, &budgeted,
                    "{} record diverged at budget {}", key, budget
                );
            }
        }
    }
}
