//! Equivalence tests for the dense edge-indexed hot path (PR 5): the
//! dense `EdgeColoring` + `ColorMarks` validators must agree with the
//! old `HashMap`-keyed semantics — same accept/reject verdict and
//! same first violation — on random graphs and colorings, and the
//! `EdgeId` layer must round-trip.

use bichrome_graph::coloring::{
    validate_edge_coloring, validate_edge_coloring_with_palette, validate_partial_edge_coloring,
    ColorId, ColorMarks, ColoringError, EdgeColoring,
};
use bichrome_graph::edge_color::misra_gries;
use bichrome_graph::{gen, Edge, EdgeId, Graph, VertexId};
use proptest::prelude::*;
use std::collections::HashMap;

/// The pre-PR-5 reference semantics, verbatim: per-vertex `HashMap`
/// duplicate detection over the sorted neighbor lists.
fn ref_validate_partial(g: &Graph, c: &EdgeColoring) -> Result<(), ColoringError> {
    for v in g.vertices() {
        let mut seen: HashMap<ColorId, Edge> = HashMap::new();
        for &u in g.neighbors(v) {
            let e = Edge::new(u, v);
            if let Some(col) = c.get(e) {
                if let Some(&prev) = seen.get(&col) {
                    return Err(ColoringError::IncidentEdges(prev, e, col));
                }
                seen.insert(col, e);
            }
        }
    }
    Ok(())
}

/// The pre-PR-5 reference complete validator.
fn ref_validate(g: &Graph, c: &EdgeColoring) -> Result<(), ColoringError> {
    for &e in g.edges() {
        if c.get(e).is_none() {
            return Err(ColoringError::UncoloredEdge(e));
        }
    }
    ref_validate_partial(g, c)
}

/// The pre-PR-5 reference palette validator.
fn ref_validate_palette(g: &Graph, c: &EdgeColoring, k: usize) -> Result<(), ColoringError> {
    ref_validate(g, c)?;
    for &e in g.edges() {
        let col = c.get(e).expect("checked complete");
        if col.index() >= k {
            return Err(ColoringError::EdgePaletteExceeded(e, col, k));
        }
    }
    Ok(())
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0u64..10_000).prop_map(|(n, seed)| {
        let p = 0.05 + (seed % 13) as f64 / 30.0;
        gen::gnp(n, p.min(0.5), seed)
    })
}

/// A random (often improper, often partial) assignment over a random
/// subset of the graph's edges, materialized both sparse (`new` +
/// `set`, everything in the side map) and dense (`dense_for`).
fn random_colorings(
    g: &Graph,
    picks: &[(u8, u8)], // (keep-if-nonzero, color) per edge, cycled
) -> (EdgeColoring, EdgeColoring) {
    let mut sparse = EdgeColoring::new();
    let mut dense = EdgeColoring::dense_for(g);
    if picks.is_empty() {
        return (sparse, dense);
    }
    for (i, &e) in g.edges().iter().enumerate() {
        let (keep, color) = picks[i % picks.len()];
        if keep % 3 != 0 {
            sparse.set(e, ColorId(color as u32 % 7));
            dense.set_id(EdgeId(i as u32), ColorId(color as u32 % 7));
        }
    }
    (sparse, dense)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_dense_validators_match_hashmap_semantics(
        g in arb_graph(),
        picks in proptest::collection::vec((0u8..6, 0u8..12), 1..64),
        palette in 1usize..10,
    ) {
        let (sparse, dense) = random_colorings(&g, &picks);
        // Representation-independent equality first.
        prop_assert_eq!(&sparse, &dense);

        let mut marks = ColorMarks::new();
        for c in [&sparse, &dense] {
            // Partial, complete, and palette validators all agree
            // with the reference — same verdict, same first violation.
            prop_assert_eq!(
                validate_partial_edge_coloring(&g, c),
                ref_validate_partial(&g, c)
            );
            prop_assert_eq!(validate_edge_coloring(&g, c), ref_validate(&g, c));
            prop_assert_eq!(
                validate_edge_coloring_with_palette(&g, c, palette),
                ref_validate_palette(&g, c, palette)
            );
            // The scratch-reusing methods agree with the free functions.
            prop_assert_eq!(
                marks.check_edge_coloring_with_palette(&g, c, palette),
                ref_validate_palette(&g, c, palette)
            );
        }
    }

    #[test]
    fn prop_dense_and_sparse_iterate_identically(
        g in arb_graph(),
        picks in proptest::collection::vec((0u8..6, 0u8..12), 1..64),
    ) {
        let (sparse, dense) = random_colorings(&g, &picks);
        let s: Vec<(Edge, ColorId)> = sparse.iter().collect();
        let d: Vec<(Edge, ColorId)> = dense.iter().collect();
        prop_assert_eq!(&s, &d, "iter order must be representation-independent");
        // Deterministic ascending edge order.
        prop_assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert_eq!(sparse.len(), s.len());
        prop_assert_eq!(sparse.num_distinct_colors(), dense.num_distinct_colors());
        prop_assert_eq!(sparse.max_color(), dense.max_color());
    }

    #[test]
    fn prop_edge_ids_round_trip(g in arb_graph()) {
        for i in 0..g.num_edges() {
            let id = EdgeId(i as u32);
            let e = g.edge(id);
            prop_assert_eq!(g.edge_id(e.u(), e.v()), Some(id));
        }
        // Incidence companions agree with Edge reconstruction.
        for v in g.vertices() {
            for (u, id) in g.incident_edges(v) {
                prop_assert_eq!(g.edge(id), Edge::new(u, v));
            }
        }
        // Non-edges resolve to None.
        for u in g.vertices() {
            for w in g.vertices() {
                if u != w && !g.has_edge(u, w) {
                    prop_assert_eq!(g.edge_id(u, w), None);
                }
            }
        }
    }
}

#[test]
fn tampered_colorings_are_caught_in_both_representations() {
    let g = gen::gnm_max_degree(40, 120, 9, 3);
    let good = misra_gries(&g);
    let budget = g.max_degree() + 1;
    let mut marks = ColorMarks::new();
    assert!(marks
        .check_edge_coloring_with_palette(&g, &good, budget)
        .is_ok());

    // Pick two incident edges to copy a color across.
    let v = g
        .vertices()
        .find(|&v| g.degree(v) >= 2)
        .expect("Δ ≥ 2 graph");
    let ids = g.neighbor_edge_ids(v);
    let (e1, e2) = (g.edge(ids[0]), g.edge(ids[1]));

    // Re-materialize the tampered coloring both ways.
    for dense in [false, true] {
        let mut conflict = if dense {
            good.clone()
        } else {
            good.iter().collect::<EdgeColoring>()
        };
        conflict.set(e2, good.get(e1).expect("colored"));
        assert!(
            matches!(
                marks.check_edge_coloring_with_palette(&g, &conflict, budget),
                Err(ColoringError::IncidentEdges(..))
            ),
            "incident conflict must be caught (dense={dense})"
        );

        let mut uncolored = conflict.clone();
        uncolored.set(e2, good.get(e2).expect("colored")); // undo
        uncolored.clear(e1);
        assert_eq!(
            marks.check_edge_coloring_with_palette(&g, &uncolored, budget),
            Err(ColoringError::UncoloredEdge(e1)),
            "missing edge must be caught (dense={dense})"
        );

        let mut loud = good.clone();
        loud.set(e1, ColorId(999));
        assert!(
            matches!(
                marks.check_edge_coloring_with_palette(&g, &loud, budget),
                Err(ColoringError::IncidentEdges(..)) | Err(ColoringError::EdgePaletteExceeded(..))
            ),
            "out-of-palette color must be caught (dense={dense})"
        );
    }
}

#[test]
fn merge_is_representation_independent() {
    let g = gen::gnp(25, 0.3, 9);
    let c = misra_gries(&g);
    // Split the coloring across two halves, one per representation.
    let mut lo = EdgeColoring::dense_for(&g);
    let mut hi = EdgeColoring::new();
    for (i, (e, col)) in c.iter().enumerate() {
        if i % 2 == 0 {
            lo.set(e, col);
        } else {
            hi.set(e, col);
        }
    }
    let mut merged = EdgeColoring::dense_for(&g);
    merged.merge(&lo).expect("disjoint");
    merged.merge(&hi).expect("disjoint");
    assert_eq!(merged, c);
    // A genuine conflict is still reported.
    if let Some((e, col)) = c.iter().next() {
        let mut clash = EdgeColoring::new();
        clash.set(e, ColorId(col.0 + 1));
        assert_eq!(merged.merge(&clash), Err(e));
    }
}

#[test]
fn vertex_id_and_edge_id_displays_differ() {
    // EdgeId is a distinct newtype with its own rendering — mixing it
    // up with VertexId in a format string is visible.
    assert_eq!(EdgeId(3).to_string(), "e3");
    assert_eq!(VertexId(3).to_string(), "v3");
    assert_eq!(EdgeId(3).index(), 3);
}
