//! End-to-end properties of the `Campaign` orchestration layer: the
//! determinism guarantee (parallel == serial, bit for bit), the
//! full-registry smoke grid from the acceptance criteria, the pinned
//! CSV format, and the CLI-args path (grids declared from strings).

use bichrome_graph::partition::Partitioner;
use bichrome_runner::{
    registry, seeds, Campaign, CampaignReport, GraphSpec, GroupBy, Instance, TrialRecord,
};
use proptest::prelude::*;

/// The 3-protocol × 2-family grid of the determinism property.
fn determinism_grid(base_seed: u64) -> Campaign {
    Campaign::new()
        .protocol_keys([
            "vertex/theorem1",
            "edge/theorem2",
            "baseline/send-everything",
        ])
        .graphs([
            GraphSpec::NearRegular { n: 32, d: 4 },
            GraphSpec::Gnp { n: 32, p: 0.15 },
        ])
        .seeds(base_seed..base_seed + 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The determinism property: a 3-protocol × 2-family × 4-seed
    /// grid produces *bit-identical* results with `.parallel(true)`
    /// and `.parallel(false)`, wherever the seed window starts.
    #[test]
    fn prop_campaign_parallel_serial_bit_identical(base_seed in 0u64..10_000) {
        let par = determinism_grid(base_seed).parallel(true).run();
        let ser = determinism_grid(base_seed).parallel(false).run();
        prop_assert_eq!(&par, &ser, "parallel execution must not change any record");
        prop_assert!(par.all_valid());
        prop_assert_eq!(par.cells.len(), 6);
        prop_assert_eq!(par.total_trials(), 24);
    }

    /// The caching property: the executor's lazy, cached instance
    /// materialization is *bit-identical* to an eager uncached build
    /// — every record of a multi-protocol grid (where the cache
    /// actually dedups across protocols) equals the record obtained
    /// by building the instance fresh with `Instance::from_spec` and
    /// running the protocol on it directly.
    #[test]
    fn prop_lazy_cached_equals_eager_uncached(base_seed in 0u64..10_000) {
        const PROTOS: [&str; 3] = [
            "vertex/theorem1",
            "edge/theorem2",
            "baseline/send-everything",
        ];
        const SPECS: [GraphSpec; 2] = [
            GraphSpec::NearRegular { n: 32, d: 4 },
            GraphSpec::Gnp { n: 32, p: 0.15 },
        ];
        let trial_seeds = base_seed..base_seed + 3;
        let report = Campaign::new()
            .protocol_keys(PROTOS)
            .graphs(SPECS)
            .seeds(trial_seeds.clone())
            .run();
        let reg = registry();
        let mut cell = 0;
        for key in PROTOS {
            let proto = reg.get(key).expect("registered");
            for spec in SPECS {
                for (t, trial_seed) in trial_seeds.clone().enumerate() {
                    // The campaign's default partition adversary,
                    // then a fully eager, uncached build.
                    let partitioner =
                        Partitioner::Random(seeds::partition_seed(trial_seed));
                    let inst = Instance::from_spec(&spec, partitioner, trial_seed);
                    let eager = TrialRecord::from_outcome(&inst, proto.run(&inst));
                    prop_assert_eq!(
                        &report.cells[cell].report.trials[t],
                        &eager,
                        "{} on {} at trial seed {}",
                        key,
                        spec,
                        trial_seed
                    );
                }
                cell += 1;
            }
        }
    }
}

/// The acceptance-criteria smoke grid: every registry protocol ×
/// 3 graph families × 4 seeds — every cell validator-valid, and the
/// parallel run bit-identical to the serial one.
#[test]
fn full_registry_smoke_grid_is_valid_and_deterministic() {
    let grid = || {
        Campaign::new()
            .protocol_keys(registry().names())
            .graphs([
                GraphSpec::NearRegular { n: 40, d: 6 },
                GraphSpec::Gnp { n: 40, p: 0.12 },
                GraphSpec::GnmMaxDegree {
                    n: 40,
                    m: 100,
                    dmax: 8,
                },
            ])
            .seeds(0..4)
    };
    let report = grid().parallel(true).run();
    assert_eq!(report.cells.len(), 9 * 3, "all 9 protocols × 3 families");
    assert_eq!(report.total_trials(), 9 * 3 * 4);
    for cell in &report.cells {
        assert!(
            cell.report.all_valid(),
            "cell {} on {} must be validator-valid: {:?}",
            cell.protocol,
            cell.spec,
            cell.report.trials.iter().find_map(|t| t.error.clone()),
        );
    }
    let serial = grid().parallel(false).run();
    assert_eq!(
        report, serial,
        "parallel vs serial output must be bit-identical"
    );

    // The pivots cover the whole grid.
    let by_proto = report.group_by(GroupBy::Protocol);
    assert_eq!(by_proto.len(), 9);
    assert!(by_proto.iter().all(|(_, s)| s.trials == 3 * 4));
}

/// The acceptance criterion of the lazy-materialization rework: on a
/// 9-protocol campaign over shared graphs, each distinct
/// `(spec, seed)` graph is built *exactly once* — the other
/// `9 × (specs × seeds) − specs × seeds` requests are cache hits —
/// and likewise for the partitions (the default partitioner is
/// per-seed, shared by every protocol).
#[test]
fn nine_protocol_grid_builds_each_graph_exactly_once() {
    let (report, stats) = Campaign::new()
        .protocol_keys(registry().names())
        .graphs([
            GraphSpec::NearRegular { n: 32, d: 4 },
            GraphSpec::Gnp { n: 32, p: 0.12 },
        ])
        .seeds(0..4)
        .run_with_stats();
    assert_eq!(report.cells.len(), 9 * 2);
    assert!(report.all_valid());
    let trials = report.total_trials() as u64;
    assert_eq!(trials, 9 * 2 * 4);
    assert_eq!(stats.graphs_requested, trials, "every trial needs a graph");
    assert_eq!(stats.graphs_built, 2 * 4, "one build per (spec, seed)");
    assert_eq!(stats.partitions_requested, trials);
    assert_eq!(
        stats.partitions_built,
        2 * 4,
        "one split per (spec, seed, partitioner)"
    );
    assert!(stats.graph_cache_hit_rate() > 0.85, "8/9 must be hits");
}

/// Golden test pinning the CSV header and row format. The cell is a
/// zero-communication deterministic protocol on a deterministic
/// graph, so every field is stable.
///
/// Header history: PR 4 deliberately bumped the format, inserting the
/// nearest-rank percentile columns `bits_p50`/`bits_p95` (after
/// `bits_max`) and `rounds_p50`/`rounds_p95` (after `rounds_max`).
/// Downstream consumers of the CSV must be updated alongside this
/// golden.
#[test]
fn campaign_csv_format_is_pinned() {
    let report = Campaign::new()
        .protocol_keys(["edge/theorem3-zero-comm"])
        .graphs([GraphSpec::Complete { n: 6 }])
        .partitioners([Partitioner::Alternating])
        .seeds(0..2)
        .run();
    assert!(report.all_valid());
    assert_eq!(
        report.to_csv(),
        "protocol,graph,family,partitioner,n,trials,valid,\
         bits_mean,bits_stddev,bits_min,bits_max,bits_p50,bits_p95,\
         rounds_mean,rounds_stddev,rounds_max,rounds_p50,rounds_p95,\
         bits_per_vertex_mean,colors_mean\n\
         edge/theorem3-zero-comm,complete(n=6),complete,alternating,6,2,2,\
         0,0,0,0,0,0,0,0,0,0,0,0,9\n"
    );
    // And the header constant matches the rendered header.
    assert_eq!(
        report.to_csv().lines().next().unwrap(),
        CampaignReport::CSV_HEADER.join(",")
    );
}

/// Grids declared from CLI-style strings: specs and partitioners
/// parse via `FromStr`, malformed input surfaces typed errors instead
/// of panics.
#[test]
fn campaign_grid_from_cli_strings() {
    let specs: Vec<GraphSpec> = ["near-regular(n=24,d=4)", "gnp(n=24,p=0.2)"]
        .iter()
        .map(|s| s.parse().expect("valid spec"))
        .collect();
    let parts: Vec<Partitioner> = ["alternating", "random(7)"]
        .iter()
        .map(|s| s.parse().expect("valid partitioner"))
        .collect();
    let report = Campaign::new()
        .protocol_keys(["edge/theorem2"])
        .graphs(specs)
        .partitioners(parts)
        .seeds(0..2)
        .run();
    assert_eq!(report.cells.len(), 4);
    assert!(report.all_valid());

    assert!("moebius(n=8)".parse::<GraphSpec>().is_err());
    assert!("random(NaN)".parse::<Partitioner>().is_err());
}

/// Baseline-relative deltas across the registry's vertex protocols:
/// Theorem 1 must beat send-everything on bits for dense-enough
/// graphs, and the rendered table carries the comparison column.
#[test]
fn campaign_baseline_deltas_against_send_everything() {
    let report = Campaign::new()
        .protocol_keys([
            "vertex/theorem1",
            "baseline/flin-mittal",
            "baseline/send-everything",
        ])
        .graphs([GraphSpec::NearRegular { n: 96, d: 8 }])
        .seeds(0..3)
        .baseline("baseline/send-everything")
        .run();
    assert!(report.all_valid());
    let deltas = report.baseline_deltas();
    assert_eq!(deltas.len(), 2, "one delta per non-baseline cell");
    for d in &deltas {
        assert!(
            d.bits_ratio.is_finite() && d.bits_ratio < 1.0,
            "{} should save bits vs send-everything, ratio {}",
            d.protocol,
            d.bits_ratio
        );
    }
    assert!(report.render_table().contains("bits vs baseline"));
}
