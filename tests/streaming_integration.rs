//! Integration tests tying the W-streaming substrate (§6.4) to the
//! rest of the workspace: streaming algorithms vs the two-party
//! protocols on shared workloads, and the weaker-output reduction.

use bichrome_graph::coloring::{validate_edge_coloring, validate_edge_coloring_with_palette};
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, Instance};
use bichrome_streaming::algorithms::{ChunkedWStreaming, GreedyWStreaming};
use bichrome_streaming::reduction::simulate_streaming_two_party;
use bichrome_streaming::run_w_streaming;
use bichrome_streaming::weaker::validate_weaker_output;
use proptest::prelude::*;

#[test]
fn streaming_and_two_party_agree_on_validity() {
    // Same workload solved three ways: all valid within their palettes.
    for seed in 0..4 {
        let g = gen::gnm_max_degree(80, 360, 10, seed);
        let delta = g.max_degree();

        let mut s = GreedyWStreaming::new(80, delta);
        let (streaming, _) = run_w_streaming(&mut s, g.edges());
        validate_edge_coloring_with_palette(&g, &streaming, 2 * delta - 1)
            .expect("streaming valid");

        let p = Partitioner::Random(seed).split(&g);
        let two_party = registry()
            .get("edge/theorem2")
            .expect("registered")
            .run(&Instance::new("gnm", p.clone(), 0));
        assert!(
            two_party.verdict.is_valid(),
            "two-party valid: {:?}",
            two_party.verdict
        );

        let sim = simulate_streaming_two_party(&p, || GreedyWStreaming::new(80, delta), 0);
        validate_weaker_output(&g, &sim.output, 2 * delta - 1).expect("simulation valid");

        // The same simulation is also a registry protocol.
        let via_registry = registry()
            .get("streaming/greedy-w")
            .expect("registered")
            .run(&Instance::new("gnm", p, 0));
        assert!(
            via_registry.verdict.is_valid(),
            "{:?}",
            via_registry.verdict
        );
        assert_eq!(via_registry.stats.total_bits(), sim.stats.total_bits());
    }
}

#[test]
fn theorem2_beats_streaming_simulation_on_bits() {
    // Algorithm 2's O(n) bits undercut the streaming-state transfer
    // (n·(2Δ−1) bits) as Δ grows: the direct protocol is strictly
    // better than simulating the trivial streamer, as it should be.
    let n = 256;
    let g = gen::gnm_max_degree(n, n * 5, 16, 3);
    let reg = registry();
    let inst = Instance::new("gnm", Partitioner::Random(1).split(&g), 0);
    let direct = reg.get("edge/theorem2").expect("registered").run(&inst);
    let sim = reg
        .get("streaming/greedy-w")
        .expect("registered")
        .run(&inst);
    assert!(
        direct.stats.total_bits() < sim.stats.total_bits(),
        "direct {} must beat simulated {}",
        direct.stats.total_bits(),
        sim.stats.total_bits()
    );
}

#[test]
fn stream_order_does_not_break_validity() {
    // Same edges, three arrival orders.
    let g = gen::gnm_max_degree(50, 200, 9, 5);
    let delta = g.max_degree();
    let mut orders: Vec<Vec<bichrome_graph::Edge>> = vec![
        g.edges().to_vec(),
        g.edges().iter().rev().copied().collect(),
    ];
    let mut shuffled = g.edges().to_vec();
    // Deterministic shuffle via index arithmetic.
    shuffled.sort_by_key(|e| (e.u().0 * 31 + e.v().0 * 17) % 101);
    orders.push(shuffled);
    for order in &mut orders {
        let mut alg = GreedyWStreaming::new(50, delta);
        let (c, _) = run_w_streaming(&mut alg, order);
        validate_edge_coloring_with_palette(&g, &c, 2 * delta - 1).expect("order-independent");
        let mut alg = ChunkedWStreaming::new(50, 30);
        let (c, _) = run_w_streaming(&mut alg, order);
        validate_edge_coloring(&g, &c).expect("chunked order-independent");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_streaming_simulation_always_valid(
        n in 10usize..50,
        seed in 0u64..500,
        alice_frac in 0u64..1000,
    ) {
        let g = gen::gnm_max_degree(n, n * 3, 8, seed);
        let delta = g.max_degree().max(1);
        let p = Partitioner::Random(alice_frac).split(&g);
        let sim = simulate_streaming_two_party(&p, || GreedyWStreaming::new(n, delta), 0);
        prop_assert!(validate_weaker_output(&g, &sim.output, 2 * delta - 1).is_ok());
        // One pass: bits equal the byte-rounded state size.
        let state = (n * (2 * delta - 1)) as u64;
        prop_assert_eq!(sim.stats.total_bits(), state.div_ceil(8) * 8);
    }

    #[test]
    fn prop_chunked_valid_for_any_capacity(
        cap in 1usize..80,
        seed in 0u64..300,
    ) {
        let g = gen::gnm_max_degree(30, 90, 7, seed);
        let mut alg = ChunkedWStreaming::new(30, cap);
        let (c, stats) = run_w_streaming(&mut alg, g.edges());
        prop_assert!(validate_edge_coloring(&g, &c).is_ok());
        // Buffer never exceeds its capacity (audited space is bounded).
        let vbits = 5; // ⌈log₂ 30⌉
        prop_assert!(stats.max_state_bits <= (cap * 2 * vbits + 64) as u64);
    }
}
