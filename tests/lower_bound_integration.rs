//! Integration tests for the Section 6 lower-bound machinery,
//! connecting the games to the actual protocols.

use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_lb::learning::run_learning_reduction;
use bichrome_lb::repetition::run_parallel_repetition;
use bichrome_lb::zec::{
    compute_labels, exact_win_probability, find_loss_witness, strategy_suite, RandomStrategy,
    ZEC_WIN_BOUND,
};
use bichrome_lb::zec_new::{estimate_zec_new_win, ColorOnly, HUB_POOL, ZEC_NEW_WIN_BOUND};

#[test]
fn zec_bound_holds_across_the_suite() {
    for s in strategy_suite() {
        let p = if s.is_deterministic() {
            exact_win_probability(s.as_ref())
        } else {
            bichrome_lb::zec::estimate_win_probability(s.as_ref(), 50_000, 1)
        };
        assert!(p <= ZEC_WIN_BOUND + 0.01, "{}: {p}", s.name());
    }
}

#[test]
fn every_deterministic_strategy_has_a_loss_witness() {
    for s in strategy_suite().iter().filter(|s| s.is_deterministic()) {
        let witness = find_loss_witness(&compute_labels(s.as_ref()));
        assert!(witness.is_some(), "{} lacks a Lemma 6.2 witness", s.name());
    }
}

#[test]
fn repetition_decay_is_exponential_in_instances() {
    let s = RandomStrategy;
    let mut prev = 1.1f64;
    for instances in [1usize, 4, 8, 12] {
        let out = run_parallel_repetition(&s, instances, 20_000, 3);
        let rate = out.win_all_rate();
        assert!(rate < prev, "decay must be monotone: {rate} !< {prev}");
        prev = rate.max(1e-9);
    }
    // At 12 instances with v ≈ 0.79 the win-all rate is ≈ 0.06.
    assert!(
        prev < 0.15,
        "12-fold repetition should rarely be won: {prev}"
    );
}

#[test]
fn zec_new_bound_holds() {
    let p = estimate_zec_new_win(
        &ColorOnly(bichrome_lb::zec::LabelingStrategy::shifted()),
        HUB_POOL,
        30_000,
        5,
    );
    assert!(p <= ZEC_NEW_WIN_BOUND + 0.01);
}

#[test]
fn hard_instance_family_is_solvable_with_communication() {
    // The lower-bound graphs (unions of the ZEC shape: Δ = 2) are of
    // course solvable by the *communicating* protocol of Theorem 2 —
    // the point of Theorem 4 is only that o(n) bits cannot do it.
    let bits: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect();
    let g = gen::c4_gadget_union(&bits);
    assert_eq!(g.max_degree(), 2);
    use bichrome_runner::{registry, Instance};
    let proto = registry().get("edge/theorem2").expect("registered");
    for part in Partitioner::family(3) {
        let out = proto.run(&Instance::new(part.to_string(), part.split(&g), 0));
        assert!(out.verdict.is_valid(), "{part}: {:?}", out.verdict);
        assert_eq!(out.palette_budget, Some(3));
    }
}

#[test]
fn learning_reduction_recovers_many_strings() {
    for seed in 0..5u64 {
        let bits: Vec<bool> = (0..10).map(|i| (i * 7 + seed as usize) % 3 == 1).collect();
        let (recovered, comm) = run_learning_reduction(&bits, seed);
        assert_eq!(recovered, bits, "seed {seed}");
        assert!(comm > 0);
    }
}

#[test]
fn communication_cost_scales_with_learned_bits() {
    // Learning twice the bits costs (roughly) at least as much
    // communication — the qualitative content of Ω(n).
    let short: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    let long: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
    let (_, c_short) = run_learning_reduction(&short, 9);
    let (_, c_long) = run_learning_reduction(&long, 9);
    assert!(
        c_long > c_short,
        "more gadgets, more bits: {c_short} vs {c_long}"
    );
}
