//! Regression tests for the trial-seed derivation scheme
//! (`bichrome_runner::seeds`): the graph generator, the default
//! random partitioner, and the protocol session must consume
//! *independent* random streams derived from one trial seed — they
//! used to alias (`Instance::from_spec(&spec, part, seed, seed)` fed
//! the generator and the session the same `StdRng` stream).

use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, seeds, Campaign, GraphSpec, Instance};
use rand::prelude::*;

const SPEC: GraphSpec = GraphSpec::Gnp { n: 40, p: 0.2 };

/// The graph of a derived instance is a pure function of the *graph*
/// sub-seed — and no longer of the raw trial seed (the old aliasing).
#[test]
fn graph_stream_derives_from_the_graph_sub_seed_only() {
    for trial_seed in 0..8u64 {
        let inst = Instance::from_spec(&SPEC, Partitioner::Alternating, trial_seed);
        assert_eq!(
            inst.graph(),
            &SPEC.build(seeds::graph_seed(trial_seed)),
            "trial {trial_seed}: graph must come from the derived graph seed"
        );
        assert_ne!(
            inst.graph(),
            &SPEC.build(trial_seed),
            "trial {trial_seed}: graph must NOT consume the raw trial seed"
        );
    }
}

/// The protocol session no longer shares the generator's stream: the
/// session seed is a distinct tagged derivation, and the two seeds'
/// RNG streams disagree.
#[test]
fn protocol_stream_is_independent_of_the_graph_stream() {
    for trial_seed in 0..32u64 {
        let inst = Instance::from_spec(&SPEC, Partitioner::Alternating, trial_seed);
        assert_eq!(inst.trial_seed, trial_seed);
        assert_eq!(inst.seed, seeds::protocol_seed(trial_seed));
        let g = seeds::graph_seed(trial_seed);
        assert_ne!(inst.seed, g, "session and generator seeds must differ");
        assert_ne!(inst.seed, trial_seed, "session seed must be derived");
        let a: u64 = StdRng::seed_from_u64(g).gen();
        let b: u64 = StdRng::seed_from_u64(inst.seed).gen();
        assert_ne!(a, b, "the two expanded streams must disagree");
    }
}

/// Changing only which protocol runs never changes the instance: a
/// multi-protocol campaign column on one trial seed reports identical
/// (n, m, Δ) for every protocol — the apples-to-apples contract the
/// shared instance cache also relies on.
#[test]
fn every_protocol_of_a_campaign_column_sees_the_identical_graph() {
    let report = Campaign::new()
        .protocol_keys(registry().names())
        .graphs([GraphSpec::NearRegular { n: 36, d: 4 }])
        .seeds(0..3)
        .run();
    for seed_idx in 0..3 {
        let shape: Vec<(usize, usize, usize)> = report
            .cells
            .iter()
            .map(|c| {
                let t = &c.report.trials[seed_idx];
                (t.n, t.m, t.delta)
            })
            .collect();
        assert!(
            shape.windows(2).all(|w| w[0] == w[1]),
            "all protocols must run on the same instance: {shape:?}"
        );
    }
}

/// The default random partitioner's stream stays decorrelated from
/// both other streams.
#[test]
fn partition_stream_is_its_own_derivation() {
    for trial_seed in 0..32u64 {
        let p = seeds::partition_seed(trial_seed);
        assert_ne!(p, seeds::graph_seed(trial_seed));
        assert_ne!(p, seeds::protocol_seed(trial_seed));
        assert_ne!(p, trial_seed);
    }
}

/// The learning probe stays end-to-end valid across a sweep that
/// includes xor-colliding `(seed, n_bits)` corners — the
/// distinct-secret-stream regression itself is pinned by the
/// `xor_colliding_sweep_points_draw_distinct_secrets` unit test next
/// to the probe, which can see the derived secrets.
#[test]
fn learning_probe_sweep_points_have_distinct_valid_secrets() {
    use bichrome_graph::gen;
    use bichrome_runner::probes::LearningProbe;
    use bichrome_runner::Protocol;

    // The xor-collision pairs: (seed=5, n=1) vs (seed=4, n=0) style.
    // Distinct sweep points must produce distinct gadget metrics.
    let g = gen::empty(4);
    for (n_bits, seed) in [(8usize, 5u64), (9, 4), (8, 4), (9, 5)] {
        let probe = LearningProbe::new(n_bits);
        let inst = Instance::new("learning", Partitioner::AllToAlice.split(&g), seed);
        let out = probe.run(&inst);
        assert!(
            out.verdict.is_valid(),
            "n_bits={n_bits} seed={seed}: {:?}",
            out.verdict
        );
        assert_eq!(out.metrics["gadget_vertices"], (4 * n_bits) as f64);
    }
}
