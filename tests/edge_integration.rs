//! End-to-end integration tests for the edge-coloring protocols:
//! Theorem 2 (2Δ−1, O(n) bits, O(1) rounds), Theorem 3 (2Δ, zero
//! bits), and Lemma 5.1 (constant Δ) — driven through the unified
//! `bichrome_runner` API, with party-level output-discipline checks
//! kept on the lower-level entry points they exercise.

use bichrome_graph::coloring::validate_edge_coloring_with_palette;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Graph};
use bichrome_runner::{registry, Instance, TrialPlan};

#[test]
fn theorem2_zoo_sweep() {
    let zoo: Vec<Graph> = vec![
        gen::empty(10),
        gen::path(30),
        gen::cycle(25),
        gen::star(20),
        gen::complete(10),
        gen::complete_bipartite(9, 12),
        gen::gnm_max_degree(60, 120, 5, 1),
        gen::gnm_max_degree(60, 260, 9, 2),
        gen::gnm_max_degree(90, 500, 13, 3),
        gen::near_regular(64, 8, 4),
        gen::near_regular(64, 12, 5),
        gen::independent_max_degree(70, 9, 7, 6),
        gen::c4_gadget_union(&[false, true, false]),
    ];
    // Whole zoo × whole partitioner family as one parallel plan.
    let instances = zoo.iter().flat_map(|g| {
        Partitioner::family(7)
            .into_iter()
            .map(move |part| Instance::new(format!("{g} under {part}"), part.split(g), 0))
    });
    let report = TrialPlan::new(registry().get("edge/theorem2").expect("registered"))
        .instances(instances)
        .run();
    for t in &report.trials {
        assert!(t.valid, "{}: {:?}", t.label, t.error);
    }
}

#[test]
fn theorem2_constant_rounds_all_sizes() {
    let proto = registry().get("edge/theorem2").expect("registered");
    for &n in &[32usize, 64, 128, 256, 512] {
        let g = gen::gnm_max_degree(n, n * 5, 11, 5);
        let out = proto.run(&Instance::new("gnm", Partitioner::Random(1).split(&g), 0));
        assert!(
            out.stats.rounds <= 3,
            "O(1) rounds violated at n={n}: {}",
            out.stats.rounds
        );
    }
}

#[test]
fn theorem2_linear_bits() {
    let proto = registry().get("edge/theorem2").expect("registered");
    let mut per_n = Vec::new();
    for &n in &[128usize, 256, 512, 1024] {
        let g = gen::gnm_max_degree(n, n * 5, 12, 2);
        let out = proto.run(&Instance::new("gnm", Partitioner::Random(4).split(&g), 0));
        assert!(out.verdict.is_valid());
        per_n.push(out.stats.total_bits() as f64 / n as f64);
    }
    let min = per_n.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_n.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 1.8,
        "bits per vertex must stay flat as n grows: {per_n:?}"
    );
}

#[test]
fn theorem2_is_deterministic() {
    let proto = registry().get("edge/theorem2").expect("registered");
    let g = gen::gnm_max_degree(70, 300, 10, 8);
    let p = Partitioner::Alternating.split(&g);
    let o1 = proto.run(&Instance::new("a", p.clone(), 123));
    let o2 = proto.run(&Instance::new("a", p, 456));
    // Seeds must not matter: the protocol is deterministic.
    match (&o1.artifact, &o2.artifact) {
        (bichrome_runner::Artifact::Edge(c1), bichrome_runner::Artifact::Edge(c2)) => {
            assert_eq!(c1, c2)
        }
        other => panic!("expected edge artifacts, got {other:?}"),
    }
    assert_eq!(o1.stats.total_bits(), o2.stats.total_bits());
    assert_eq!(o1.stats.rounds, o2.stats.rounds);
}

#[test]
fn theorem3_zero_communication_everywhere() {
    let zoo: Vec<Graph> = vec![
        gen::path(20),
        gen::cycle(17),
        gen::star(14),
        gen::complete(9),
        gen::gnm_max_degree(50, 180, 8, 3),
        gen::near_regular(48, 6, 9),
    ];
    let instances = zoo.iter().flat_map(|g| {
        Partitioner::family(13)
            .into_iter()
            .map(move |part| Instance::new(format!("{g} under {part}"), part.split(g), 0))
    });
    let report = TrialPlan::new(
        registry()
            .get("edge/theorem3-zero-comm")
            .expect("registered"),
    )
    .instances(instances)
    .run();
    for t in &report.trials {
        assert!(t.valid, "{}: {:?}", t.label, t.error);
        assert_eq!(
            t.total_bits(),
            0,
            "{}: Theorem 3 never communicates",
            t.label
        );
        assert_eq!(t.rounds, 0, "{}", t.label);
    }
}

#[test]
fn one_fewer_color_costs_real_bits() {
    // Theorems 2+3 together: the (2Δ−1) protocol transmits Θ(n) bits
    // while the (2Δ) protocol transmits none. The lower bound
    // (Theorem 4) says this gap is inherent.
    let reg = registry();
    let g = gen::gnm_max_degree(200, 900, 10, 1);
    let inst = Instance::new("gnm", Partitioner::Random(6).split(&g), 0);
    let out = reg.get("edge/theorem2").expect("registered").run(&inst);
    assert!(out.stats.total_bits() > 0);
    assert!(
        out.stats.total_bits() as usize >= g.num_vertices(),
        "Algorithm 2 sends several masks of n bits each"
    );
    let zc = reg
        .get("edge/theorem3-zero-comm")
        .expect("registered")
        .run(&inst);
    assert_eq!(zc.stats.total_bits(), 0);
}

#[test]
fn bounded_delta_protocol_exact_costs() {
    // Lemma 5.1 for every Δ in its range: one round, (2Δ−1)·n bits
    // from Alice only.
    let proto = registry().get("edge/lemma5.1-bounded").expect("registered");
    for delta in 2..=7usize {
        let n = 40;
        let g = gen::gnm_max_degree(n, n * delta / 2, delta, delta as u64);
        if g.max_degree() != delta {
            continue; // generator fell short; irrelevant for this check
        }
        let out = proto.run(&Instance::new("gnm", Partitioner::Random(2).split(&g), 0));
        assert!(out.verdict.is_valid(), "Δ={delta}: {:?}", out.verdict);
        assert_eq!(out.stats.rounds, 1, "Δ={delta}");
        assert_eq!(
            out.stats.bits_alice_to_bob,
            ((2 * delta - 1) * n) as u64,
            "Δ={delta}: Alice sends her per-vertex masks"
        );
        assert_eq!(
            out.stats.bits_bob_to_alice, 0,
            "Δ={delta}: Bob stays silent"
        );
    }
}

#[test]
fn adversarial_single_sided_inputs() {
    // All edges on one side: the other party must still terminate and
    // output nothing, while the protocol stays valid and cheap.
    let proto = registry().get("edge/theorem2").expect("registered");
    let g = gen::gnm_max_degree(80, 320, 9, 4);
    for part in [Partitioner::AllToAlice, Partitioner::AllToBob] {
        let out = proto.run(&Instance::new(part.to_string(), part.split(&g), 0));
        assert!(out.verdict.is_valid(), "{part}: {:?}", out.verdict);
        assert!(out.stats.rounds <= 3);
    }
}

#[test]
fn each_party_colors_exactly_its_edges() {
    // Output discipline lives below the runner's merged Artifact: each
    // party must output colors for exactly its own edge set — on every
    // graph family, under every partitioner (covering the Lemma 5.1,
    // Algorithm 2, and deferral/matching paths). The deprecated shim
    // is the entry point that exposes per-party outputs, so it stays
    // under test here.
    #[allow(deprecated)]
    let run = |p: &bichrome_graph::partition::EdgePartition| {
        bichrome_core::edge::solve_edge_coloring(p, 0)
    };
    let zoo: Vec<Graph> = vec![
        gen::path(30),
        gen::cycle(25),
        gen::complete(10),
        gen::gnm_max_degree(60, 120, 5, 1),
        gen::gnm_max_degree(60, 260, 9, 2),
        gen::gnm_max_degree(50, 150, 10, 7),
    ];
    for g in &zoo {
        for part in Partitioner::family(7) {
            let p = part.split(g);
            let out = run(&p);
            assert_eq!(
                out.alice.len(),
                p.alice().num_edges(),
                "{g} under {part}: Alice must color exactly her edges"
            );
            assert_eq!(
                out.bob.len(),
                p.bob().num_edges(),
                "{g} under {part}: Bob must color exactly his edges"
            );
        }
    }
    // The deferral path (K10, everything at Alice): Bob outputs
    // nothing even though his thread participates.
    let g = gen::complete(10);
    let p = Partitioner::AllToAlice.split(&g);
    let out = run(&p);
    assert_eq!(out.alice.len(), 45);
    assert!(out.bob.is_empty());
}

#[test]
fn algorithm2_doubly_matched_vertices() {
    // Crafted instance forcing the Lemma 5.4 path of Algorithm 2: both
    // parties own a full-degree hub, and the hubs share low-degree
    // neighbors, so the two Δ-perfect matchings can collide at shared
    // vertices and the colliding edges must draw colors from each
    // other's palettes (or the special color, exclusively).
    //
    // Layout per gadget g (Δ = 8): Alice hub a_g with 8 Alice edges to
    // shared vertices s_{g,0..7}; Bob hub b_g with 8 Bob edges to the
    // *same* shared vertices. Every shared vertex has degree exactly 2
    // (one edge per party), far below Δ/2 = 4, so whenever the two
    // matchings meet at a shared vertex, both sides must take the
    // other party's palette via the Lemma 5.4 exchange.
    use bichrome_graph::{Edge, GraphBuilder, VertexId};

    let gadgets = 4usize;
    let per = 10; // a, b, 8 shared
    let n = gadgets * per;
    let mut builder = GraphBuilder::new(n);
    let mut alice_edges = Vec::new();
    for g in 0..gadgets {
        let base = (g * per) as u32;
        let a = VertexId(base);
        let b = VertexId(base + 1);
        for k in 0..8u32 {
            let s = VertexId(base + 2 + k);
            builder.add_edge(a, s);
            alice_edges.push(Edge::new(a, s));
            builder.add_edge(b, s);
        }
    }
    let whole = builder.build();
    assert_eq!(whole.max_degree(), 8, "hubs have full degree");
    let partition = bichrome_graph::partition::EdgePartition::new(whole.clone(), &alice_edges);
    // Both parties hold a degree-8 hub in their own subgraph.
    assert_eq!(partition.alice().max_degree(), 8);
    assert_eq!(partition.bob().max_degree(), 8);

    let out = registry()
        .get("edge/theorem2")
        .expect("registered")
        .run(&Instance::new("collision-gadget", partition, 0));
    assert!(out.verdict.is_valid(), "{:?}", out.verdict);
    let merged = match &out.artifact {
        bichrome_runner::Artifact::Edge(c) => c.clone(),
        other => panic!("expected edge artifact, got {other:?}"),
    };

    // Every hub is matched; find each gadget's matching edges and check
    // the cross-palette discipline: the special color (14) may appear
    // at a shared vertex from at most one side (validity would already
    // fail otherwise, but assert the mechanism explicitly).
    let special = bichrome_graph::coloring::ColorId(14);
    for g in 0..gadgets {
        let base = (g * per) as u32;
        for k in 0..8u32 {
            let s = VertexId(base + 2 + k);
            let ca = merged.get(Edge::new(VertexId(base), s)).expect("colored");
            let cb = merged
                .get(Edge::new(VertexId(base + 1), s))
                .expect("colored");
            assert_ne!(ca, cb, "incident colors must differ at {s}");
            assert!(
                !(ca == special && cb == special),
                "the special color is exclusive at every shared vertex"
            );
        }
    }
}

#[test]
fn algorithm2_deferred_subgraph_path() {
    // Force nonempty deferred subgraphs: give Alice a clique-like core
    // of vertices whose Alice-degrees all reach Δ−1, so the deferral
    // loop must move edges into DG (max degree 2 there, Lemma 5.2) and
    // color them from Bob's first seven colors.
    let proto = registry().get("edge/theorem2").expect("registered");

    // Complete graph K10 (Δ = 9 ≥ 8), all edges to Alice: every vertex
    // has Alice-degree 9 = Δ ≥ Δ−1, so deferral definitely triggers.
    let g = gen::complete(10);
    let out = proto.run(&Instance::new("k10", Partitioner::AllToAlice.split(&g), 0));
    assert!(out.verdict.is_valid(), "{:?}", out.verdict);
    validate_edge_coloring_with_palette(
        &g,
        match &out.artifact {
            bichrome_runner::Artifact::Edge(c) => c,
            other => panic!("expected edge artifact, got {other:?}"),
        },
        17,
    )
    .expect("valid on K10");

    // Same but split by LowHalf so both parties keep high-degree cores.
    let g = gen::complete(20); // Δ = 19
    let p = Partitioner::LowHalf.split(&g);
    assert!(p.alice().max_degree() >= 18 || p.bob().max_degree() >= 18);
    let out = proto.run(&Instance::new("k20", p, 0));
    assert!(
        out.verdict.is_valid(),
        "valid on split K20: {:?}",
        out.verdict
    );
    assert_eq!(out.palette_budget, Some(37));
}
