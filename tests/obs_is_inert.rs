//! The zero-perturbation guarantee, end to end: running the CI smoke
//! campaign with span tracing enabled must produce a byte-identical
//! report — the same pinned CSV `ci/report_golden.csv` fixes — while
//! still recording the per-trial spans the trace export is built
//! from. Observability is strictly read-only with respect to results.
//!
//! This lives in its own test binary (one `#[test]`) because the
//! tracing gate is process-global: no other test thread may toggle it
//! mid-assertion.

use bichrome::obs;
use bichrome::runner::CampaignFile;

const CAMPAIGN: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/ci/campaign.toml"));
const GOLDEN: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/ci/report_golden.csv"));

fn run_ci_campaign_csv() -> String {
    let file = CampaignFile::parse(CAMPAIGN).expect("ci campaign parses");
    let (report, _stats) = file
        .to_campaign(None)
        .try_run_with_stats()
        .expect("ci campaign runs");
    report.to_csv()
}

#[test]
fn tracing_records_spans_without_perturbing_the_golden_csv() {
    obs::set_tracing(false);
    let untraced = run_ci_campaign_csv();

    obs::clear_spans();
    obs::set_tracing(true);
    let traced = run_ci_campaign_csv();
    obs::set_tracing(false);

    let spans = obs::span_events();
    assert!(
        spans.iter().any(|s| s.name == "trial/run"),
        "the traced run must record trial/run spans, got {} events",
        spans.len()
    );
    assert_eq!(
        traced, untraced,
        "span tracing must not change a single report byte"
    );
    assert_eq!(
        untraced.trim_end(),
        GOLDEN.trim_end(),
        "the report must still match the pinned golden CSV"
    );
}
