//! The transport-invariance property, end to end: the bits and
//! rounds a two-party session reports are *defined* by the protocol,
//! not the wire — metering happens above the link — so every
//! `CommStats`, and in fact every whole `TrialRecord`, must be
//! bit-identical whether the session runs over the in-process
//! exchange, OS pipes, or a loopback TCP socket.

use bichrome_comm::{with_session_transport, TransportKind};
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Graph};
use bichrome_runner::{
    compute_trial, registry, FaultPlan, GraphSpec, Instance, InstanceCache, TrialRecord,
};
use bichrome_store::TrialKey;
use proptest::prelude::*;

/// Protocols spanning every family the registry has: vertex, edge,
/// baselines, streaming — all must be transport-invariant.
const PROTOCOLS: [&str; 6] = [
    "vertex/theorem1",
    "edge/theorem2",
    "edge/lemma5.1-bounded",
    "baseline/flin-mittal",
    "baseline/greedy-binary-search",
    "streaming/greedy-w",
];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..32, 0u64..10_000).prop_map(|(n, seed)| {
        let p = 0.05 + (seed % 13) as f64 / 30.0;
        gen::gnp(n, p.min(0.5), seed)
    })
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        Just(Partitioner::Alternating),
        Just(Partitioner::AllToAlice),
        Just(Partitioner::ParitySum),
        (0u64..1000).prop_map(Partitioner::Random),
    ]
}

proptest! {
    // Every case runs 3 transports × 6 protocols, two of them across
    // real file descriptors — keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Raw protocol sessions: identical `CommStats` on every wire.
    #[test]
    fn prop_comm_stats_are_transport_invariant(
        g in arb_graph(),
        part in arb_partitioner(),
        seed in 0u64..1000,
    ) {
        let inst = Instance::new("prop", part.split(&g), seed);
        for key in PROTOCOLS {
            let proto = registry().get(key).expect("registered");
            let base = with_session_transport(TransportKind::InProc, || proto.run(&inst));
            for kind in [TransportKind::Pipe, TransportKind::Tcp] {
                let out = with_session_transport(kind, || proto.run(&inst));
                prop_assert_eq!(
                    &out.stats, &base.stats,
                    "{} must meter identically over {}", key, kind
                );
                prop_assert_eq!(
                    out.verdict.is_valid(), base.verdict.is_valid(),
                    "{} verdict changed over {}", key, kind
                );
            }
        }
    }

    /// Whole trial descriptors (the unit remote workers compute):
    /// identical `TrialRecord`s on every wire, over a multi-protocol
    /// grid point with the campaign's per-seed default partitioner.
    #[test]
    fn prop_trial_records_are_transport_invariant(
        n in 8usize..48,
        d in 2usize..6,
        seed in 0u64..1000,
    ) {
        let cache = InstanceCache::new();
        for key in PROTOCOLS {
            let trial = TrialKey {
                protocol: key.to_string(),
                graph: GraphSpec::NearRegular { n, d }.to_string(),
                partitioner: "random(per-seed)".to_string(),
                seed,
            };
            let no_fault = FaultPlan::new();
            let records: Vec<TrialRecord> = TransportKind::ALL
                .iter()
                .map(|&kind| {
                    compute_trial(&trial, kind, &no_fault, &cache).expect("descriptor resolves")
                })
                .collect();
            prop_assert_eq!(
                &records[1], &records[0],
                "{} pipe record differs from inproc", key
            );
            prop_assert_eq!(
                &records[2], &records[0],
                "{} tcp record differs from inproc", key
            );
            // A recoverable fault plan on the harshest wire changes
            // nothing either: retransmits happen below the meter.
            let plan = FaultPlan::new().sever_at(1 + seed % 3).corrupt_at(2);
            let faulted = compute_trial(&trial, TransportKind::Tcp, &plan, &cache)
                .expect("descriptor resolves under faults");
            prop_assert_eq!(
                &faulted, &records[0],
                "{} record changed under {}", key, plan
            );
        }
    }
}
