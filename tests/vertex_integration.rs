//! End-to-end integration tests for the (Δ+1)-vertex-coloring stack:
//! Theorem 1 against every generator family, partitioner, and the
//! baselines — all driven through the unified `bichrome_runner` API.

use bichrome_core::rct::paper_iterations;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Graph};
use bichrome_runner::{registry, Instance, Registry, TrialPlan};

fn graph_zoo(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("empty".into(), gen::empty(25)),
        ("path".into(), gen::path(40)),
        ("cycle-odd".into(), gen::cycle(31)),
        ("cycle-even".into(), gen::cycle(32)),
        ("star".into(), gen::star(30)),
        ("complete".into(), gen::complete(12)),
        ("bipartite".into(), gen::complete_bipartite(8, 11)),
        ("gnp-sparse".into(), gen::gnp(70, 0.04, seed)),
        ("gnp-dense".into(), gen::gnp(40, 0.3, seed)),
        ("near-regular".into(), gen::near_regular(60, 7, seed)),
        ("capped".into(), gen::gnm_max_degree(80, 240, 9, seed)),
        (
            "c4-gadgets".into(),
            gen::c4_gadget_union(&[true, false, true, true, false]),
        ),
        (
            "independent-max".into(),
            gen::independent_max_degree(50, 6, 6, seed),
        ),
        ("grid-king".into(), gen::grid_king(8, 7)),
        ("caterpillar".into(), gen::caterpillar(12, 4)),
    ]
}

fn theorem1(reg: &Registry) -> std::sync::Arc<dyn bichrome_runner::Protocol> {
    reg.get("vertex/theorem1").expect("registered")
}

#[test]
fn theorem1_valid_on_the_whole_zoo() {
    // The zoo as one parallel TrialPlan: every family, one report.
    let instances = graph_zoo(5)
        .into_iter()
        .map(|(name, g)| Instance::new(name, Partitioner::Random(3).split(&g), 17));
    let report = TrialPlan::new(theorem1(&registry()))
        .instances(instances)
        .run();
    for t in &report.trials {
        assert!(t.valid, "{}: {:?}", t.label, t.error);
    }
}

#[test]
fn theorem1_valid_under_every_partitioner() {
    let g = gen::gnm_max_degree(70, 220, 8, 2);
    let g = &g;
    let instances = Partitioner::family(11).into_iter().flat_map(|part| {
        [0u64, 1, 2]
            .into_iter()
            .map(move |seed| Instance::new(part.to_string(), part.split(g), seed))
    });
    let report = TrialPlan::new(theorem1(&registry()))
        .instances(instances)
        .run();
    for t in &report.trials {
        assert!(t.valid, "{}/seed{}: {:?}", t.label, t.seed, t.error);
    }
}

#[test]
fn theorem1_beats_flin_mittal_on_rounds_at_same_bits_scale() {
    // The headline comparison of the paper (§1.1): same O(n) bits, but
    // rounds drop from Θ(n) to O(log log n · log Δ).
    let reg = registry();
    let g = gen::near_regular(240, 8, 4);
    let inst = Instance::new("near-regular", Partitioner::Random(5).split(&g), 7);

    let ours = theorem1(&reg).run(&inst);
    let fm = reg
        .get("baseline/flin-mittal")
        .expect("registered")
        .run(&inst);
    assert!(ours.verdict.is_valid() && fm.verdict.is_valid());

    assert!(
        ours.stats.rounds * 3 < fm.stats.rounds,
        "ours = {} rounds must be far below Flin–Mittal = {} rounds",
        ours.stats.rounds,
        fm.stats.rounds
    );
    // Bits stay within a moderate constant of each other (both O(n)).
    let ratio = ours.stats.total_bits() as f64 / fm.stats.total_bits().max(1) as f64;
    assert!(
        ratio < 8.0,
        "our bits should be within a constant of FM's: ratio {ratio}"
    );
}

#[test]
fn theorem1_bits_scale_linearly() {
    // Doubling n at fixed Δ should roughly double the bits — not
    // quadruple them (the bits/vertex ratio stays bounded).
    let proto = theorem1(&registry());
    let mut bits = Vec::new();
    for &n in &[128usize, 256, 512] {
        let g = gen::near_regular(n, 8, 6);
        let out = proto.run(&Instance::new("nr", Partitioner::Random(1).split(&g), 3));
        assert!(out.verdict.is_valid());
        bits.push(out.stats.total_bits() as f64 / n as f64);
    }
    let min = bits.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = bits.iter().cloned().fold(0.0f64, f64::max);
    assert!(max / min < 2.0, "bits/vertex not flat across n: {bits:?}");
}

#[test]
fn theorem1_rounds_track_paper_budget() {
    // Worst-case rounds O(log log n · log Δ): compare against an
    // explicit constant times the formula.
    let g = gen::near_regular(300, 16, 8);
    let out = theorem1(&registry()).run(&Instance::new("nr", Partitioner::Random(2).split(&g), 11));
    let budget = paper_iterations(300) as u64 * (2 * (16f64).log2().ceil() as u64 + 8) + 200;
    assert!(
        out.stats.rounds <= budget,
        "rounds {} exceed paper-shaped budget {budget}",
        out.stats.rounds
    );
}

#[test]
fn all_protocols_agree_on_validity_never_on_colors() {
    // Different registry protocols give different colorings, but the
    // validators accept every one of them.
    let reg = registry();
    let g = gen::gnp(50, 0.15, 9);
    let inst = Instance::new("gnp", Partitioner::Alternating.split(&g), 3);
    for key in [
        "vertex/theorem1",
        "baseline/flin-mittal",
        "baseline/greedy-binary-search",
        "baseline/send-everything",
    ] {
        let out = reg.get(key).expect("registered").run(&inst);
        assert!(out.verdict.is_valid(), "{key}: {:?}", out.verdict);
        assert_eq!(out.palette_budget, Some(g.max_degree() + 1));
    }
}

#[test]
fn theorem1_under_newman_private_coins() {
    // §3.1: public randomness can be replaced by private coins at an
    // additive O(log n + log 1/δ) bits (Newman). Run the full
    // Theorem 1 protocol with only a private seed announcement. The
    // Newman wrapper composes with the party scripts directly, below
    // the runner's session assembly.
    use bichrome_comm::newman::run_newman;
    use bichrome_core::rct::RctConfig;
    use bichrome_core::vertex::vertex_coloring_party;
    use bichrome_core::PartyInput;
    use bichrome_graph::coloring::validate_vertex_coloring_with_palette;

    let g = gen::gnm_max_degree(60, 180, 8, 4);
    let p = Partitioner::Random(2).split(&g);
    let (a_in, b_in) = (PartyInput::alice(&p), PartyInput::bob(&p));
    let cfg = RctConfig::default();
    let ((ca, _), (cb, _), stats) = run_newman(
        11,
        1 << 10, // K = 1024 candidate seeds -> 10 announcement bits
        777,
        move |ctx| vertex_coloring_party(&a_in, &ctx, &cfg),
        move |ctx| vertex_coloring_party(&b_in, &ctx, &cfg),
    );
    assert_eq!(ca, cb);
    validate_vertex_coloring_with_palette(&g, &ca, g.max_degree() + 1)
        .expect("valid under private coins");
    assert!(stats.total_bits() >= 10, "announcement bits are metered");
}

#[test]
fn repeated_runs_with_distinct_seeds_all_valid() {
    let g = gen::gnm_max_degree(60, 200, 10, 3);
    let instances =
        (0..10).map(|seed| Instance::new("paritysum", Partitioner::ParitySum.split(&g), seed));
    let report = TrialPlan::new(theorem1(&registry()))
        .instances(instances)
        .parallel(true)
        .run();
    assert!(
        report.all_valid(),
        "{:?}",
        report.trials.iter().find(|t| !t.valid)
    );
    assert_eq!(report.summary.trials, 10);
}
