//! Property-based tests over the whole protocol stack: random graphs,
//! random partitions, random seeds — every output must satisfy the
//! validators, and the classical substrates must satisfy their
//! theorems.

use bichrome_core::edge::two_delta::solve_two_delta;
use bichrome_core::slack_int::run_slack_int_session;
use bichrome_graph::coloring::validate_edge_coloring_with_palette;
use bichrome_graph::edge_color::{fournier, misra_gries};
use bichrome_graph::matching::{delta_perfect_matching, is_matching};
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Edge, Graph, GraphBuilder, VertexId};
use bichrome_runner::{registry, Instance};
use proptest::prelude::*;

/// Strategy: a random simple graph with `n ∈ [2, 40]` and each
/// possible edge included with probability ~`density`.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0u64..10_000).prop_map(|(n, seed)| {
        let p = 0.02 + (seed % 17) as f64 / 40.0;
        gen::gnp(n, p.min(0.5), seed)
    })
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop_oneof![
        Just(Partitioner::AllToAlice),
        Just(Partitioner::AllToBob),
        Just(Partitioner::Alternating),
        Just(Partitioner::ParitySum),
        Just(Partitioner::LowHalf),
        (0u64..1000).prop_map(Partitioner::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_theorem1_always_valid(g in arb_graph(), part in arb_partitioner(), seed in 0u64..1000) {
        let inst = Instance::new("prop", part.split(&g), seed);
        let out = registry().get("vertex/theorem1").expect("registered").run(&inst);
        prop_assert!(out.verdict.is_valid(), "{:?}", out.verdict);
    }

    #[test]
    fn prop_theorem2_always_valid(g in arb_graph(), part in arb_partitioner()) {
        let inst = Instance::new("prop", part.split(&g), 0);
        let out = registry().get("edge/theorem2").expect("registered").run(&inst);
        prop_assert!(out.verdict.is_valid(), "{:?}", out.verdict);
        prop_assert!(out.stats.rounds <= 3);
    }

    #[test]
    fn prop_theorem3_always_valid(g in arb_graph(), part in arb_partitioner()) {
        let p = part.split(&g);
        let (a, b) = solve_two_delta(&p);
        let mut merged = a;
        prop_assert!(merged.merge(&b).is_ok());
        let budget = (2 * g.max_degree()).max(1);
        prop_assert!(validate_edge_coloring_with_palette(&g, &merged, budget).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_misra_gries_uses_delta_plus_one(g in arb_graph()) {
        let c = misra_gries(&g);
        prop_assert!(validate_edge_coloring_with_palette(
            &g, &c, g.max_degree() + 1).is_ok());
    }

    #[test]
    fn prop_fournier_uses_delta((n, d, hubs, seed) in (20usize..60, 3usize..8, 2usize..6, 0u64..500)
        .prop_filter("feasible", |(n, d, hubs, _)| hubs * d <= (n - hubs) * (d - 1) && hubs + d <= *n)) {
        let g = gen::independent_max_degree(n, d, hubs, seed);
        let c = fournier(&g).expect("precondition holds by construction");
        prop_assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree()).is_ok());
    }

    #[test]
    fn prop_delta_matching_covers((n, d, hubs, seed) in (20usize..60, 3usize..8, 2usize..6, 0u64..500)
        .prop_filter("feasible", |(n, d, hubs, _)| hubs * d <= (n - hubs) * (d - 1) && hubs + d <= *n)) {
        let g = gen::independent_max_degree(n, d, hubs, seed);
        let m = delta_perfect_matching(&g).expect("Lemma 5.3");
        prop_assert!(is_matching(&m));
        let delta = g.max_degree();
        let covered: std::collections::HashSet<VertexId> =
            m.iter().flat_map(|e| [e.u(), e.v()]).collect();
        for v in g.vertices_of_degree(delta) {
            prop_assert!(covered.contains(&v));
        }
    }

    #[test]
    fn prop_slack_int_avoids_both_sets(
        m in 4usize..64,
        xs in proptest::collection::vec(0u64..64, 0..20),
        ys in proptest::collection::vec(0u64..64, 0..20),
        seed in 0u64..1000,
    ) {
        let m = m.max(4);
        let mut x: Vec<u64> = xs.into_iter().map(|e| e % m as u64).collect();
        let mut y: Vec<u64> = ys.into_iter().map(|e| e % m as u64).collect();
        x.sort_unstable(); x.dedup();
        y.sort_unstable(); y.dedup();
        // Enforce the Problem 6 precondition |X| + |Y| ≤ m − 1.
        while x.len() + y.len() > m - 1 {
            if x.len() >= y.len() { x.pop(); } else { y.pop(); }
        }
        let (e, _) = run_slack_int_session(m, &x, &y, seed);
        prop_assert!(!x.contains(&e) && !y.contains(&e));
    }

    #[test]
    fn prop_partitions_are_exact(g in arb_graph(), part in arb_partitioner()) {
        let p = part.split(&g);
        prop_assert_eq!(
            p.alice().num_edges() + p.bob().num_edges(),
            g.num_edges()
        );
        for v in g.vertices() {
            prop_assert_eq!(p.alice().degree(v) + p.bob().degree(v), g.degree(v));
        }
    }

    #[test]
    fn prop_graph_builder_roundtrip(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80)) {
        let mut b = GraphBuilder::new(30);
        let mut expected = std::collections::HashSet::new();
        for (u, v) in edges {
            if u != v {
                b.add_edge(VertexId(u), VertexId(v));
                expected.insert(Edge::new(VertexId(u), VertexId(v)));
            }
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), expected.len());
        for e in g.edges() {
            prop_assert!(expected.contains(e));
        }
        // Handshake: degree sum = 2m.
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }
}
