//! The persistent-store acceptance properties: a campaign run against
//! a store — killed partway and resumed, or re-run fully warm — must
//! produce a `CampaignReport` *bit-identical* to an uninterrupted
//! fresh serial run, and a corrupted trial log must salvage its good
//! prefix and recompute only the tail.

use bichrome_runner::{Campaign, CampaignReport, GraphSpec};
use bichrome_store::Store;
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique scratch directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        TempDir(std::env::temp_dir().join(format!(
            "bichrome-resume-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The property grid: 3 protocols (a randomized vertex protocol, a
/// deterministic edge protocol, a baseline) × 2 families, with a
/// shifting seed window.
fn grid(base_seed: u64, seeds: std::ops::Range<u64>) -> Campaign {
    Campaign::new()
        .protocol_keys([
            "vertex/theorem1",
            "edge/theorem2",
            "baseline/send-everything",
        ])
        .graphs([
            GraphSpec::NearRegular { n: 28, d: 4 },
            GraphSpec::Gnp { n: 28, p: 0.15 },
        ])
        .seeds(seeds.map(|s| base_seed + s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance criterion: (fresh serial run) == (run half,
    /// "kill", resume from store) == (fully warm re-run), bit for
    /// bit, wherever the seed window starts.
    #[test]
    fn prop_resume_and_warm_runs_are_bit_identical_to_fresh(base_seed in 0u64..10_000) {
        let tmp = TempDir::new("prop");

        // Ground truth: an uninterrupted fresh *serial* run.
        let fresh = grid(base_seed, 0..4).parallel(false).run();

        // A run that died halfway: only the first two seeds landed in
        // the store before the "kill".
        let (_, stats) = grid(base_seed, 0..2)
            .with_store(&tmp.0)
            .run_with_stats();
        prop_assert_eq!(stats.trials_computed, 3 * 2 * 2);
        prop_assert_eq!(stats.trials_skipped, 0);

        // Resume the full grid from the store (parallel this time —
        // the schedule must not matter).
        let (resumed, stats) = grid(base_seed, 0..4)
            .with_store(&tmp.0)
            .run_with_stats();
        prop_assert_eq!(stats.trials_skipped, 3 * 2 * 2, "the half already done");
        prop_assert_eq!(stats.trials_computed, 3 * 2 * 2, "only the other half runs");
        prop_assert_eq!(&resumed, &fresh, "resume must be bit-identical to fresh");

        // A fully warm re-run computes nothing and still matches.
        let (warm, stats) = grid(base_seed, 0..4)
            .with_store(&tmp.0)
            .run_with_stats();
        prop_assert_eq!(stats.trials_computed, 0, "warm store: every cell skipped");
        prop_assert_eq!(stats.trials_skipped, 3 * 2 * 4);
        prop_assert_eq!(stats.graphs_requested, 0, "no instance materialized");
        prop_assert_eq!(&warm, &fresh, "warm must be bit-identical to fresh");
    }
}

/// A truncated trial log loads its salvageable prefix and the next
/// run recomputes only the destroyed tail — ending bit-identical to
/// an uninterrupted run.
#[test]
fn truncated_log_salvages_and_recomputes_only_the_tail() {
    let tmp = TempDir::new("truncate");
    let fresh = grid(77, 0..4).parallel(false).run();
    let total: u64 = 3 * 2 * 4;

    let (_, stats) = grid(77, 0..4).with_store(&tmp.0).run_with_stats();
    assert_eq!(stats.trials_computed, total);

    // Tear the newest segment mid-frame, as a crash mid-append would
    // (writes land in v2 binary segments; `trials.jsonl` is the
    // legacy read path).
    let store = Store::open_existing(&tmp.0).expect("open for tear");
    let seg = store
        .segments()
        .expect("list segments")
        .last()
        .cloned()
        .expect("at least one segment");
    drop(store);
    let bytes = std::fs::read(&seg).expect("read segment");
    std::fs::write(&seg, &bytes[..bytes.len() * 2 / 3]).expect("truncate");

    // Loading salvages the intact prefix and reports the damage.
    let store = Store::open_existing(&tmp.0).expect("open");
    let salvaged = store.len() as u64;
    let salvage = store.salvage().expect("damage must be reported");
    assert_eq!(salvage.kept as u64, salvaged);
    assert!(salvage.dropped_bytes > 0);
    assert!(salvaged < total, "something was actually lost");
    assert!(salvaged > 0, "and something was actually salvaged");
    drop(store);

    // Re-running recomputes exactly the destroyed records…
    let (repaired, stats) = grid(77, 0..4).with_store(&tmp.0).run_with_stats();
    assert_eq!(stats.trials_skipped, salvaged);
    assert_eq!(stats.trials_computed, total - salvaged);
    // …and the result is still bit-identical to the fresh run.
    assert_eq!(repaired, fresh);

    // The store is whole again: everything skips.
    let (_, stats) = grid(77, 0..4).with_store(&tmp.0).run_with_stats();
    assert_eq!(stats.trials_computed, 0);
}

/// `CampaignReport::from_store` rebuilds per-cell reports that are
/// bit-identical to the live run's (modulo canonical cell order).
#[test]
fn report_from_store_matches_the_live_run() {
    let tmp = TempDir::new("fromstore");
    let (live, _) = grid(5, 0..3).with_store(&tmp.0).run_with_stats();
    let store = Store::open_existing(&tmp.0).expect("open");
    let rebuilt = CampaignReport::from_store(&store).expect("decode");
    assert_eq!(rebuilt.total_trials(), live.total_trials());
    for cell in &live.cells {
        let twin = rebuilt
            .cells
            .iter()
            .find(|c| {
                c.protocol == cell.protocol
                    && c.spec == cell.spec
                    && c.partitioner == cell.partitioner
            })
            .unwrap_or_else(|| panic!("cell {} on {} missing", cell.protocol, cell.spec));
        assert_eq!(twin.report, cell.report);
    }
}
