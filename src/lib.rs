//! `bichrome` — facade over the whole workspace.
//!
//! Reproduction (and growing production system) for *Round and
//! Communication Efficient Graph Coloring* (Chang, Mishra, Nguyen,
//! Salim; PODC 2025). This crate re-exports every member crate under
//! one roof and hosts the workspace-level integration tests and
//! examples.
//!
//! # Quickstart
//!
//! The unified execution API lives in [`runner`]:
//!
//! ```
//! use bichrome::runner::{registry, GraphSpec, TrialPlan};
//!
//! let proto = registry().get("vertex/theorem1").expect("registered");
//! let report = TrialPlan::new(proto)
//!     .graphs(GraphSpec::NearRegular { n: 64, d: 6 })
//!     .seeds(0..4)
//!     .parallel(true)
//!     .run();
//! assert_eq!(report.trials.len(), 4);
//! assert!(report.all_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bichrome_comm as comm;
pub use bichrome_core as core;
pub use bichrome_graph as graph;
pub use bichrome_lb as lb;
pub use bichrome_obs as obs;
pub use bichrome_runner as runner;
pub use bichrome_store as store;
pub use bichrome_streaming as streaming;
