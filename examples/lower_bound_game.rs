//! Playing the lower-bound games of Section 6.
//!
//! Demonstrates why `(2Δ−1)`-edge coloring *needs* Ω(n) bits: every
//! zero-communication strategy for the ZEC game loses a constant
//! fraction of the time, winning all `n` parallel instances becomes
//! exponentially unlikely, and guessing a protocol transcript to avoid
//! talking decays just as fast.
//!
//! ```sh
//! cargo run -p bichrome-lb --example lower_bound_game
//! ```

use bichrome_lb::learning::run_learning_reduction;
use bichrome_lb::repetition::{guessing_success_rate, run_parallel_repetition};
use bichrome_lb::zec::{
    compute_labels, estimate_win_probability, exact_win_probability, find_loss_witness,
    strategy_suite, ZEC_WIN_BOUND,
};

fn main() {
    println!("=== ZEC game (Lemma 6.2): no strategy wins with certainty ===");
    println!("bound: every strategy wins ≤ 11024/11025 ≈ {ZEC_WIN_BOUND:.6}\n");
    for s in strategy_suite() {
        let p = if s.is_deterministic() {
            exact_win_probability(s.as_ref())
        } else {
            estimate_win_probability(s.as_ref(), 200_000, 42)
        };
        let kind = if s.is_deterministic() {
            "exact "
        } else {
            "~est. "
        };
        println!("  {:<20} {kind} win rate: {p:.4}", s.name());
        if s.is_deterministic() {
            let witness = find_loss_witness(&compute_labels(s.as_ref()));
            println!("    loss witness: {witness:?}");
        }
    }

    println!("\n=== Parallel repetition (Lemma 6.4): win-all decays 2^-Ω(n) ===");
    let s = bichrome_lb::zec::RandomStrategy;
    for instances in [1usize, 2, 4, 8, 16] {
        let out = run_parallel_repetition(&s, instances, 40_000, 7);
        println!(
            "  n = {instances:>2}: win-all {:.4}   (v^n prediction {:.4})",
            out.win_all_rate(),
            out.predicted()
        );
    }

    println!("\n=== Communication guessing (Lemma 6.1): 2^-c per transcript bit ===");
    for bits in [1u32, 2, 4, 6, 8] {
        let rate = guessing_success_rate(bits, 300_000, 3);
        println!(
            "  c = {bits}: both-guess-right rate {rate:.6}   (prediction {:.6})",
            0.25f64.powi(bits as i32)
        );
    }

    println!("\n=== Learning reduction (§2.3): vertex coloring leaks Alice's bits ===");
    let secret = vec![true, false, false, true, true, false, true, false];
    let (recovered, comm) = run_learning_reduction(&secret, 11);
    println!("  Alice's secret: {secret:?}");
    println!("  Bob recovered : {recovered:?}   using {comm} protocol bits");
    assert_eq!(secret, recovered);
    println!("  → any (Δ+1)-coloring protocol transfers n bits: Ω(n) communication.");
}
