//! Playing the lower-bound games of Section 6 — as one campaign per
//! game, with the lemma bounds encoded in the probes' verdicts.
//!
//! Demonstrates why `(2Δ−1)`-edge coloring *needs* Ω(n) bits: every
//! zero-communication strategy for the ZEC game loses a constant
//! fraction of the time, winning all `n` parallel instances becomes
//! exponentially unlikely, guessing a protocol transcript to avoid
//! talking decays just as fast, and the learning reduction shows the
//! bits are really *transferred*.
//!
//! ```sh
//! cargo run --example lower_bound_game
//! ```

use bichrome_lb::zec::ZEC_WIN_BOUND;
use bichrome_runner::probes::{
    unit_graph, GuessingProbe, LearningProbe, RepetitionProbe, ZecGameProbe,
};
use bichrome_runner::{Campaign, Protocol};
use std::sync::Arc;

fn main() {
    println!("=== ZEC game (Lemma 6.2): no strategy wins with certainty ===");
    println!("bound: every strategy wins ≤ 11024/11025 ≈ {ZEC_WIN_BOUND:.6}\n");
    let strategies = Campaign::new()
        .protocols(ZecGameProbe::suite(200_000))
        .graphs([unit_graph()])
        .seeds([42])
        .run();
    // A strategy beating the bound would make its cell invalid.
    assert!(strategies.all_valid(), "Lemma 6.2 must hold");
    for cell in &strategies.cells {
        let s = cell.summary();
        let kind = if s.metric("exact").mean == 1.0 {
            "exact "
        } else {
            "~est. "
        };
        println!(
            "  {:<24} {kind} win rate: {:.4}",
            cell.protocol,
            s.metric("win_rate").mean
        );
    }

    println!("\n=== Parallel repetition (Lemma 6.4): win-all decays 2^-Ω(n) ===");
    let repetition = Campaign::new()
        .protocols(
            [1usize, 2, 4, 8, 16]
                .iter()
                .map(|&n| Arc::new(RepetitionProbe::new(n, 40_000)) as Arc<dyn Protocol>),
        )
        .graphs([unit_graph()])
        .seeds([7])
        .run();
    for cell in &repetition.cells {
        let s = cell.summary();
        println!(
            "  {:<21}: win-all {:.4}   (v^n prediction {:.4})",
            cell.protocol,
            s.metric("win_all").mean,
            s.metric("predicted").mean,
        );
    }

    println!("\n=== Communication guessing (Lemma 6.1): 2^-c per transcript bit ===");
    let guessing = Campaign::new()
        .protocols(
            [1u32, 2, 4, 6, 8]
                .iter()
                .map(|&c| Arc::new(GuessingProbe::new(c, 300_000)) as Arc<dyn Protocol>),
        )
        .graphs([unit_graph()])
        .seeds([3])
        .run();
    for cell in &guessing.cells {
        let s = cell.summary();
        println!(
            "  {:<18}: both-guess-right rate {:.6}   (prediction {:.6})",
            cell.protocol,
            s.metric("success").mean,
            s.metric("predicted").mean,
        );
    }

    println!("\n=== Learning reduction (§2.3): vertex coloring leaks Alice's bits ===");
    let learning = Campaign::new()
        .protocols([Arc::new(LearningProbe::new(8)) as Arc<dyn Protocol>])
        .graphs([unit_graph()])
        .seeds([11])
        .run();
    // The probe's verdict is the exact-recovery check.
    assert!(learning.all_valid(), "Bob must recover Alice's string");
    let s = learning.cells[0].summary();
    println!(
        "  Bob recovered Alice's 8-bit secret using {:.0} protocol bits \
         ({:.1} bits per learned bit)",
        s.total_bits.mean,
        s.metric("bits_per_learned_bit").mean,
    );
    println!("  → any (Δ+1)-coloring protocol transfers n bits: Ω(n) communication.");
}
