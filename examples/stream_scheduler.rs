//! Edge coloring a link stream with bounded memory — the W-streaming
//! model of §6.4.
//!
//! A switch sees flow requests one at a time and must assign each a
//! time slot *immediately* (it cannot buffer the whole demand matrix).
//! That is exactly W-streaming edge coloring: internal state is the
//! scarce resource, output streams out. This example contrasts the
//! `(2Δ−1)`-slot greedy scheduler (whose state is Θ(n·Δ) — and, by
//! Corollary 1.2, Ω(n) is unavoidable at this slot count) with the
//! chunked scheduler that slashes state by paying with extra slots.
//!
//! ```sh
//! cargo run -p bichrome-lb --example stream_scheduler
//! ```

use bichrome_graph::coloring::validate_edge_coloring;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_streaming::algorithms::{ChunkedWStreaming, GreedyWStreaming};
use bichrome_streaming::reduction::simulate_streaming_two_party;
use bichrome_streaming::run_w_streaming;
use bichrome_streaming::weaker::validate_weaker_output;

fn main() {
    // 400 hosts, ~4300 flows, at most 32 concurrent flows per host.
    let g = gen::gnm_max_degree(400, 4300, 32, 21);
    let n = g.num_vertices();
    let delta = g.max_degree();
    println!(
        "flow stream: {g} ({} flows arriving one by one)\n",
        g.num_edges()
    );

    // Scheduler 1: greedy, 2Δ−1 slots, Θ(nΔ) bits of switch memory.
    let mut greedy = GreedyWStreaming::new(n, delta);
    let (schedule, space) = run_w_streaming(&mut greedy, g.edges());
    validate_edge_coloring(&g, &schedule).expect("conflict-free schedule");
    println!(
        "greedy scheduler : {:>3} slots, {:>7} bits of state ({:.1} bits/host)",
        schedule.num_distinct_colors(),
        space.max_state_bits,
        space.max_state_bits as f64 / n as f64
    );

    // Scheduler 2: chunked, Õ(n√Δ) memory, more slots.
    let mut chunked = ChunkedWStreaming::with_sqrt_delta_capacity(n, delta);
    let (schedule2, space2) = run_w_streaming(&mut chunked, g.edges());
    validate_edge_coloring(&g, &schedule2).expect("conflict-free schedule");
    println!(
        "chunked scheduler: {:>3} slots, {:>7} bits of state ({:.1} bits/host)",
        schedule2.num_distinct_colors(),
        space2.max_state_bits,
        space2.max_state_bits as f64 / n as f64
    );

    // The §6.4 reduction: two controllers each see half the flows and
    // hand the scheduler state across once — communication equals the
    // state size, which is why Theorem 5's Ω(n) communication bound
    // becomes Corollary 1.2's Ω(n) space bound.
    let p = Partitioner::Random(4).split(&g);
    let sim = simulate_streaming_two_party(&p, || GreedyWStreaming::new(n, delta), 0);
    validate_weaker_output(&g, &sim.output, 2 * delta - 1).expect("valid weaker output");
    println!(
        "\ntwo-controller simulation of the greedy scheduler: {} bits in {} round \
         (= its state, byte-rounded)",
        sim.stats.total_bits(),
        sim.stats.rounds
    );
    println!(
        "Corollary 1.2: at 2Δ−1 slots no streaming scheduler can beat Ω(n) \
         bits of state — the memory above is not an implementation artifact."
    );
}
