//! Edge coloring a link stream with bounded memory — the W-streaming
//! model of §6.4.
//!
//! A switch sees flow requests one at a time and must assign each a
//! time slot *immediately* (it cannot buffer the whole demand matrix).
//! That is exactly W-streaming edge coloring: internal state is the
//! scarce resource, output streams out. This example contrasts the
//! `(2Δ−1)`-slot greedy scheduler (whose state is Θ(n·Δ) — and, by
//! Corollary 1.2, Ω(n) is unavoidable at this slot count) with the
//! chunked scheduler that slashes state by paying with extra slots —
//! both schedulers and the two-controller simulation declared as one
//! `bichrome_runner::Campaign` over the same flow stream.
//!
//! ```sh
//! cargo run --example stream_scheduler
//! ```

use bichrome_graph::partition::Partitioner;
use bichrome_runner::probes::WStreamingSpaceProbe;
use bichrome_runner::{Campaign, GraphSpec, Protocol};
use std::sync::Arc;

fn main() {
    // 400 hosts, ~4300 flows, at most 32 concurrent flows per host.
    let flows = GraphSpec::GnmMaxDegree {
        n: 400,
        m: 4300,
        dmax: 32,
    };
    println!("flow stream: {flows} (flows arriving one by one)\n");

    // One campaign, two schedulers, identical stream: greedy (2Δ−1
    // slots, Θ(nΔ) bits of switch memory) vs chunked (Õ(n√Δ) memory,
    // more slots). The validator guarantees both schedules are
    // conflict-free.
    let schedulers = Campaign::new()
        .protocols([
            Arc::new(WStreamingSpaceProbe::greedy()) as Arc<dyn Protocol>,
            Arc::new(WStreamingSpaceProbe::chunked()) as Arc<dyn Protocol>,
        ])
        .graphs([flows])
        .seeds([21])
        .run();
    assert!(schedulers.all_valid(), "conflict-free schedules");
    for cell in &schedulers.cells {
        let s = cell.summary();
        println!(
            "{:<24}: {:>4.0} slots, {:>7.0} bits of state ({:.1} bits/host)",
            cell.protocol,
            s.colors.mean,
            s.metric("state_bits").mean,
            s.metric("state_bits_per_vertex").mean,
        );
    }

    // The §6.4 reduction: two controllers each see half the flows and
    // hand the scheduler state across once — communication equals the
    // state size, which is why Theorem 5's Ω(n) communication bound
    // becomes Corollary 1.2's Ω(n) space bound.
    let simulation = Campaign::new()
        .protocol_keys(["streaming/greedy-w"])
        .graphs([flows])
        .partitioners([Partitioner::Random(4)])
        .seeds([21])
        .run();
    assert!(simulation.all_valid(), "valid weaker output");
    let s = simulation.cells[0].summary();
    println!(
        "\ntwo-controller simulation of the greedy scheduler: {:.0} bits in {:.0} round \
         (= its state, byte-rounded)",
        s.total_bits.mean, s.rounds.mean,
    );
    println!(
        "Corollary 1.2: at 2Δ−1 slots no streaming scheduler can beat Ω(n) \
         bits of state — the memory above is not an implementation artifact."
    );
}
