//! Persistent campaigns: run a grid against an on-disk store, then
//! extend the seed axis — only the new trials compute, and the
//! merged report is bit-identical to running everything fresh.
//!
//! ```sh
//! cargo run --example persistent_campaign
//! ```
//!
//! The same workflow is available declaratively through the
//! `bichrome` CLI (`bichrome run campaign.toml --store dir/`); this
//! example shows the library surface: `Campaign::with_store`.

use bichrome_runner::{Campaign, GraphSpec};

/// The experiment grid at a given seed count. Everything else —
/// protocols, graph families, adversary — stays fixed, which is what
/// makes the runs share store entries.
fn grid(seeds: std::ops::Range<u64>) -> Campaign {
    Campaign::new()
        .protocol_keys([
            "vertex/theorem1",
            "edge/theorem2",
            "baseline/send-everything",
        ])
        .graphs([GraphSpec::NearRegular { n: 96, d: 6 }])
        .seeds(seeds)
        .baseline("baseline/send-everything")
}

fn main() {
    let store = std::env::temp_dir().join(format!("bichrome-example-store-{}", std::process::id()));

    // First session: 8 seeds, all computed, all persisted.
    let (first, stats) = grid(0..8).with_store(&store).run_with_stats();
    println!("first run (seeds 0..8):\n{stats}");
    assert_eq!(stats.trials_computed, 3 * 8);

    // Second session — imagine a new shell, days later — extends the
    // axis to 16 seeds. The store already holds the first half.
    let (extended, stats) = grid(0..16).with_store(&store).run_with_stats();
    println!("\nextended run (seeds 0..16):\n{stats}");
    assert_eq!(stats.trials_skipped, 3 * 8, "first half came from disk");
    assert_eq!(stats.trials_computed, 3 * 8, "second half computed");

    // The merge is exact: the stored half is bit-identical to what a
    // fresh run would have produced.
    assert_eq!(
        extended.cells[0].report.trials[..8],
        first.cells[0].report.trials[..]
    );
    println!("\n{}", extended.render_table());

    std::fs::remove_dir_all(&store).expect("clean up example store");
}
