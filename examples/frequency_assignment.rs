//! Frequency assignment in a wireless network — the intro's motivating
//! application for vertex coloring.
//!
//! Access points that interfere (are adjacent) must broadcast on
//! different frequencies. The interference measurements are collected
//! by two monitoring stations, each observing a subset of the
//! interference pairs — exactly the two-party edge-partition model.
//! `Δ+1` frequencies always suffice, and Theorem 1 finds the
//! assignment with `O(n)` bits between the stations.
//!
//! ```sh
//! cargo run --example frequency_assignment
//! ```

use bichrome_graph::gen;
use bichrome_graph::partition::{EdgePartition, Partitioner};
use bichrome_runner::{registry, Instance};

fn main() {
    // An "urban grid" interference graph: access points on a 24 × 16
    // grid interfering with their king-move neighbors (Δ ≤ 8).
    let g = gen::grid_king(24, 16); // 384 access points
    let delta = g.max_degree();
    println!(
        "interference graph: {g} → {} frequencies suffice",
        delta + 1
    );

    // Station A heard the east side, station B the west side — a
    // structured, worst-case-flavored split.
    let partition: EdgePartition = Partitioner::LowHalf.split(&g);
    let inst = Instance::new("grid-king", partition, 99);

    // Theorem 1 and the three baselines are all registry entries; one
    // loop compares them on identical inputs.
    let reg = registry();
    for key in [
        "vertex/theorem1",
        "baseline/flin-mittal",
        "baseline/greedy-binary-search",
        "baseline/send-everything",
    ] {
        let out = reg.get(key).expect("registered").run(&inst);
        assert!(
            out.verdict.is_valid(),
            "{key} must produce a valid assignment"
        );
        println!(
            "{key:<29}: {:>8} bits {:>6} rounds  ({} frequencies used)",
            out.stats.total_bits(),
            out.stats.rounds,
            out.artifact.colors_used()
        );
    }
    println!(
        "\nTheorem 1 keeps the bit budget of Flin–Mittal while cutting \
         rounds from Θ(n) to O(log log n · log Δ)."
    );
}
