//! Frequency assignment in a wireless network — the intro's motivating
//! application for vertex coloring.
//!
//! Access points that interfere (are adjacent) must broadcast on
//! different frequencies. The interference measurements are collected
//! by two monitoring stations, each observing a subset of the
//! interference pairs — exactly the two-party edge-partition model.
//! `Δ+1` frequencies always suffice, and Theorem 1 finds the
//! assignment with `O(n)` bits between the stations.
//!
//! ```sh
//! cargo run -p bichrome-core --example frequency_assignment
//! ```

use bichrome_core::baselines::{run_baseline, Baseline};
use bichrome_core::rct::RctConfig;
use bichrome_core::vertex::solve_vertex_coloring;
use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
use bichrome_graph::partition::{EdgePartition, Partitioner};
use bichrome_graph::gen;

fn main() {
    // An "urban grid" interference graph: access points on a 24 × 16
    // grid interfering with their king-move neighbors (Δ ≤ 8).
    let g = gen::grid_king(24, 16); // 384 access points
    let delta = g.max_degree();
    println!("interference graph: {g} → {} frequencies suffice", delta + 1);

    // Station A heard the east side, station B the west side — a
    // structured, worst-case-flavored split.
    let partition: EdgePartition = Partitioner::LowHalf.split(&g);

    let out = solve_vertex_coloring(&partition, 99, &RctConfig::default());
    validate_vertex_coloring_with_palette(&g, &out.coloring, delta + 1)
        .expect("valid frequency assignment");
    println!(
        "theorem-1 protocol : {:>8} bits {:>6} rounds  ({} frequencies used)",
        out.stats.total_bits(),
        out.stats.rounds,
        out.coloring.num_distinct_colors()
    );

    // Compare with the baselines the paper discusses.
    for baseline in
        [Baseline::FlinMittal, Baseline::GreedyBinarySearch, Baseline::SendEverything]
    {
        let (coloring, stats) = run_baseline(&partition, baseline, 99);
        validate_vertex_coloring_with_palette(&g, &coloring, delta + 1)
            .expect("baselines are also correct");
        println!(
            "{baseline:<19}: {:>8} bits {:>6} rounds",
            stats.total_bits(),
            stats.rounds
        );
    }
    println!(
        "\nTheorem 1 keeps the bit budget of Flin–Mittal while cutting \
         rounds from Θ(n) to O(log log n · log Δ)."
    );
}
