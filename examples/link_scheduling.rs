//! Link scheduling via edge coloring — the classical application of
//! `(2Δ−1)`-edge coloring.
//!
//! Each edge is a point-to-point transmission; two transmissions
//! sharing an endpoint cannot run in the same time slot, so a proper
//! edge coloring *is* a conflict-free schedule and the number of
//! colors is its makespan. The link demands are logged at two
//! controllers (the two parties). Theorem 2 schedules everything in
//! `2Δ−1` slots with `O(n)` bits and 3 rounds; Theorem 3 shows `2Δ`
//! slots need no coordination at all.
//!
//! ```sh
//! cargo run --example link_scheduling
//! ```

use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, Artifact, Instance};

fn main() {
    // A data-center-ish workload: 200 hosts, 1400 flows, at most 16
    // concurrent flows per host.
    let g = gen::gnm_max_degree(200, 1400, 16, 3);
    let delta = g.max_degree();
    println!("demand graph: {g}");
    let inst = Instance::new("demands", Partitioner::Random(8).split(&g), 0);
    let reg = registry();

    // ---- Theorem 2: 2Δ−1 slots, O(n) bits, O(1) rounds. ----
    let out = reg.get("edge/theorem2").expect("registered").run(&inst);
    assert!(out.verdict.is_valid(), "a valid schedule");
    let merged = match &out.artifact {
        Artifact::Edge(c) => c.clone(),
        other => panic!("edge protocol must yield an edge coloring, got {other:?}"),
    };
    let slots = merged.max_color().expect("nonempty").index() + 1;
    println!(
        "(2Δ−1)-protocol: schedule fits in {slots} ≤ {} slots, {} bits, {} rounds",
        2 * delta - 1,
        out.stats.total_bits(),
        out.stats.rounds
    );

    // Per-slot utilization: how many links fire in each slot.
    let mut per_slot = vec![0usize; 2 * delta - 1];
    for (_, c) in merged.iter() {
        per_slot[c.index()] += 1;
    }
    let busiest = per_slot.iter().max().copied().unwrap_or(0);
    println!(
        "busiest slot carries {busiest} links; average {:.1}",
        g.num_edges() as f64 / slots as f64
    );

    // ---- Theorem 3: one more slot buys zero communication. ----
    let out = reg
        .get("edge/theorem3-zero-comm")
        .expect("registered")
        .run(&inst);
    assert!(out.verdict.is_valid(), "valid 2Δ schedule");
    assert_eq!(out.stats.total_bits(), 0, "Theorem 3 never talks");
    let slots2 = match &out.artifact {
        Artifact::Edge(c) => c.max_color().expect("nonempty").index() + 1,
        other => panic!("edge protocol must yield an edge coloring, got {other:?}"),
    };
    println!(
        "(2Δ)-protocol: {slots2} slots with zero bits exchanged — the price of \
         the last saved slot is Ω(n) bits (Theorem 4)"
    );
}
