//! Quickstart: color a random graph with both of the paper's
//! protocols and print what they cost.
//!
//! ```sh
//! cargo run -p bichrome-core --example quickstart
//! ```

use bichrome_core::edge::solve_edge_coloring;
use bichrome_core::rct::RctConfig;
use bichrome_core::vertex::solve_vertex_coloring;
use bichrome_graph::coloring::{
    validate_edge_coloring_with_palette, validate_vertex_coloring_with_palette,
};
use bichrome_graph::partition::Partitioner;
use bichrome_graph::gen;

fn main() {
    // An input graph: n = 300, m ≈ 1200, Δ capped at 12 — think of it
    // as a communication network whose links are logged at two sites.
    let g = gen::gnm_max_degree(300, 1200, 12, 7);
    let delta = g.max_degree();
    println!("input: {g}");

    // The adversary splits the edges between Alice and Bob.
    let partition = Partitioner::Random(42).split(&g);
    println!(
        "partition: Alice holds {} edges, Bob {}",
        partition.alice().num_edges(),
        partition.bob().num_edges()
    );

    // ---- Theorem 1: (Δ+1)-vertex coloring. ----
    let out = solve_vertex_coloring(&partition, 1, &RctConfig::default());
    validate_vertex_coloring_with_palette(&g, &out.coloring, delta + 1)
        .expect("protocol output is a proper (Δ+1)-coloring");
    println!(
        "vertex coloring: {} colors, {} bits ({:.1} bits/vertex), {} rounds",
        out.coloring.num_distinct_colors(),
        out.stats.total_bits(),
        out.stats.total_bits() as f64 / g.num_vertices() as f64,
        out.stats.rounds,
    );
    println!(
        "  random-color-trial left {} of {} vertices for the D1LC stage",
        out.rct.remaining,
        g.num_vertices()
    );

    // ---- Theorem 2: (2Δ−1)-edge coloring. ----
    let out = solve_edge_coloring(&partition, 1);
    let merged = out.merged();
    validate_edge_coloring_with_palette(&g, &merged, 2 * delta - 1)
        .expect("protocol output is a proper (2Δ−1)-edge coloring");
    println!(
        "edge coloring: {} colors, {} bits ({:.1} bits/vertex), {} rounds",
        merged.num_distinct_colors(),
        out.stats.total_bits(),
        out.stats.total_bits() as f64 / g.num_vertices() as f64,
        out.stats.rounds,
    );
}
