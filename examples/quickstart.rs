//! Quickstart: color a random graph with both of the paper's
//! protocols through the unified runner API and print what they cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, GraphSpec, Instance, TrialPlan};

fn main() {
    // An input graph: n = 300, m ≈ 1200, Δ capped at 12 — think of it
    // as a communication network whose links are logged at two sites.
    let g = gen::gnm_max_degree(300, 1200, 12, 7);
    println!("input: {g}");

    // The adversary splits the edges between Alice and Bob.
    let partition = Partitioner::Random(42).split(&g);
    println!(
        "partition: Alice holds {} edges, Bob {}",
        partition.alice().num_edges(),
        partition.bob().num_edges()
    );
    let inst = Instance::new("quickstart", partition, 1);

    // Every protocol hangs off the same registry; running one is
    // uniform regardless of which theorem it implements.
    let reg = registry();
    for key in [
        "vertex/theorem1",
        "edge/theorem2",
        "edge/theorem3-zero-comm",
    ] {
        let proto = reg.get(key).expect("registered");
        let out = proto.run(&inst);
        assert!(out.verdict.is_valid(), "{key} must validate");
        println!(
            "{key:<24}: {:>7} bits ({:.1} bits/vertex), {:>3} rounds, {} colors ≤ {:?}",
            out.stats.total_bits(),
            out.stats.total_bits() as f64 / inst.n() as f64,
            out.stats.rounds,
            out.artifact.colors_used(),
            out.palette_budget,
        );
    }

    // Repeated, seed-parallel trials are one builder chain; the
    // report aggregates mean/stddev/max and serializes to JSON.
    let report = TrialPlan::new(reg.get("vertex/theorem1").expect("registered"))
        .graphs(GraphSpec::GnmMaxDegree {
            n: 300,
            m: 1200,
            dmax: 12,
        })
        .seeds(0..8)
        .parallel(true)
        .run();
    println!(
        "\n8 seeded trials of vertex/theorem1:\n{}",
        report.render_table()
    );
    println!("JSON head: {}…", &report.to_json()[..72]);
}
